#include "serve/scrub.h"

#include <cstdio>
#include <filesystem>

#include "common/error.h"
#include "serve/cache.h"
#include "serve/journal.h"
#include "serve/json.h"
#include "trace/corpus.h"

namespace perple::serve
{

namespace
{

/** Re-verify the corpus and set the corpus fields of @p report. */
void
scrubCorpus(const std::string &corpusDir, ScrubReport &report)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    if (!fs::is_directory(corpusDir, ec))
        return;

    trace::CorpusOptions options;
    options.jobs = 1;
    options.salvage = true;
    options.verifyChecksums = true;
    const trace::CorpusReport scan =
        trace::scanCorpus(trace::discoverCorpus(corpusDir), options);
    report.corpusFiles = scan.files.size();
    report.corpusOk = scan.okFiles;
    report.corpusSalvaged = scan.salvagedFiles;

    // Quarantine, don't delete: a capture that fails its CRC may
    // still be the only record of a divergence — rename it out of
    // the corpus (so manifests and merges stop tripping over it) and
    // leave the bytes for a human.
    for (const trace::CorpusFile &file : scan.files) {
        if (file.status != trace::FileStatus::Corrupt)
            continue;
        fs::rename(file.path, file.path + ".quarantined", ec);
        if (ec) {
            std::fprintf(stderr,
                         "perple_serve: scrub: cannot quarantine "
                         "%s: %s\n",
                         file.path.c_str(),
                         ec.message().c_str());
            continue;
        }
        ++report.corpusQuarantined;
    }

    // Regenerate the manifest from what survived, so corpus.json
    // never advertises a file the scrub just moved aside.
    try {
        const trace::CorpusReport clean = trace::scanCorpus(
            trace::discoverCorpus(corpusDir), options);
        trace::writeCorpusManifest(corpusDir + "/corpus.json",
                                   clean);
        report.manifestWritten = true;
    } catch (const Error &error) {
        std::fprintf(stderr,
                     "perple_serve: scrub: manifest rewrite "
                     "failed: %s\n",
                     error.what());
    }
}

} // namespace

ScrubReport
scrubState(const std::string &stateDir, const std::string &corpusDir)
{
    ScrubReport report;

    // Opening the cache runs the full replay-time self-check; the
    // compaction rewrite then drops superseded duplicates and stamps
    // a sum on every surviving line.
    {
        ResultCache cache(stateDir);
        report.cacheEntries = cache.size();
        report.cacheQuarantined = cache.quarantined();
        report.cacheCompacted = cache.rewriteCompact();
    }

    // The journal replay tolerates torn tails by construction;
    // compacting to the still-pending set bounds its size without
    // forgiving any owed job.
    {
        JobJournal journal(stateDir);
        report.journalPending = journal.pending().size();
        journal.compact(journal.pending());
    }

    if (!corpusDir.empty())
        scrubCorpus(corpusDir, report);
    return report;
}

std::string
scrubReportJson(const ScrubReport &report)
{
    Json object = Json::object();
    object.set("cache_entries",
               Json::numberUnsigned(report.cacheEntries));
    object.set("cache_quarantined",
               Json::numberUnsigned(report.cacheQuarantined));
    object.set("cache_compacted",
               Json::boolean(report.cacheCompacted));
    object.set("journal_pending",
               Json::numberUnsigned(report.journalPending));
    object.set("corpus_files",
               Json::numberUnsigned(report.corpusFiles));
    object.set("corpus_ok", Json::numberUnsigned(report.corpusOk));
    object.set("corpus_salvaged",
               Json::numberUnsigned(report.corpusSalvaged));
    object.set("corpus_quarantined",
               Json::numberUnsigned(report.corpusQuarantined));
    object.set("manifest_written",
               Json::boolean(report.manifestWritten));
    return object.dump();
}

} // namespace perple::serve
