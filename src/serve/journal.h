/**
 * @file
 * The write-ahead job journal of the serve daemon.
 *
 * The result cache (cache.h) makes *finished* work durable; this
 * journal makes *accepted* work durable. Every admitted job appends an
 * `accepted` record (carrying the full submit message) before the
 * tenant is told "accepted", and a `started` / `done` / `failed`
 * record as it moves through execution — each record one JSON line in
 * an append-only, fsynced `<stateDir>/journal.jsonl`, salvaged on
 * reopen with the same torn-final-line policy as the cache index: an
 * unparsable line (the process died mid-append) is dropped, never an
 * earlier one.
 *
 * Replay computes, per cache key, the balance of `accepted` records
 * minus `done`/`failed` records. A positive balance means the daemon
 * died owing that job an execution; start() re-enqueues it (tagged
 * recovered) so a SIGKILL mid-campaign loses no accepted work. Using a
 * balance rather than a state machine makes replay insensitive to the
 * one benign reordering the daemon allows (a very fast worker may
 * journal `done` before the submitter's `accepted` append lands) and
 * to duplicate keys from `no_cache` resubmissions.
 *
 * Failure policy: journaling is a durability upgrade, not a
 * correctness gate. When an append cannot be made durable (disk full,
 * failing fsync — both injectable via common/inject.h) the journal
 * flips to degraded mode, the append reports false, and the daemon
 * keeps serving non-durably with a logged warning and a stats counter
 * instead of aborting: losing crash-durability is strictly better
 * than losing the daemon.
 */

#ifndef PERPLE_SERVE_JOURNAL_H
#define PERPLE_SERVE_JOURNAL_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace perple::serve
{

/** One job the journal says was accepted but never resolved. */
struct PendingJob
{
    std::uint64_t key = 0;

    /** The original submit op message (one JSON object line). */
    std::string submitJson;
};

/** Append-only fsynced job journal; see file comment. */
class JobJournal
{
  public:
    /**
     * Open (and replay) `<stateDir>/journal.jsonl`, creating the
     * directory and an empty journal when missing.
     * @throws UserError when the directory or journal is unusable.
     */
    explicit JobJournal(const std::string &stateDir);

    ~JobJournal();

    JobJournal(const JobJournal &) = delete;
    JobJournal &operator=(const JobJournal &) = delete;

    /**
     * Transition appends (write + fsync). Each returns true when the
     * record is durable; false flips the journal to degraded mode and
     * the record may be lost on a crash — the caller logs and keeps
     * going.
     */
    bool accepted(std::uint64_t key, const std::string &submitJson);
    bool started(std::uint64_t key);
    bool done(std::uint64_t key);
    bool failed(std::uint64_t key, const std::string &reason);

    /** Unresolved jobs found by the replay at construction, in
     *  journal order (one entry per owed execution). */
    const std::vector<PendingJob> &pending() const { return pending_; }

    /**
     * Rewrite the journal to exactly @p keep (one `accepted` record
     * each) via temp-file + rename, bounding journal growth across
     * restarts. Called once at daemon start after recovery triage;
     * failure degrades instead of throwing.
     */
    void compact(const std::vector<PendingJob> &keep);

    /** An append could not be made durable at least once. */
    bool degraded() const;

    /** Durable appends performed. */
    std::uint64_t writes() const;

    /** Appends that failed (each one a durability gap). */
    std::uint64_t failures() const;

    /** fsync once more (shutdown barrier). */
    void sync();

    const std::string &path() const { return path_; }

  private:
    bool append(const std::string &line);

    std::string path_;
    int fd_ = -1;
    mutable std::mutex mutex_;
    std::vector<PendingJob> pending_;
    bool degraded_ = false;
    std::uint64_t writes_ = 0;
    std::uint64_t failures_ = 0;
};

} // namespace perple::serve

#endif // PERPLE_SERVE_JOURNAL_H
