/**
 * @file
 * Offline integrity scrub of a daemon's persistent state.
 *
 * A daemon that has been SIGKILLed, run on a flaky disk, or simply
 * accumulated months of appends leaves three artifacts behind: the
 * cache index, the job journal and (optionally) a capture corpus.
 * scrubState() validates and repairs all three in place:
 *
 *  - cache index: replayed through ResultCache's self-checks (sum
 *    re-hash + embedded-key cross-check); failing entries move to
 *    `cache-quarantine.jsonl`, the surviving entries are rewritten as
 *    one compacted, fully-checksummed index (dropping superseded
 *    duplicates and upgrading pre-sum lines).
 *  - job journal: replayed; unresolved jobs are counted and the
 *    journal is compacted to exactly those records.
 *  - corpus: every `.plt` re-verified through the trace reader with
 *    checksums on; Corrupt-beyond-salvage files are renamed aside
 *    with a `.quarantined` suffix (never deleted — they may be the
 *    only evidence of a real bug) and `corpus.json` is regenerated
 *    from the survivors.
 *
 * The same cache validation runs automatically at daemon start; the
 * standalone `perple_serve scrub` subcommand exists so state can be
 * audited and repaired without starting a daemon. Run it offline —
 * scrubbing a state dir while a daemon appends to it interleaves two
 * writers.
 */

#ifndef PERPLE_SERVE_SCRUB_H
#define PERPLE_SERVE_SCRUB_H

#include <cstddef>
#include <string>

namespace perple::serve
{

/** What one scrubState() pass found and repaired. */
struct ScrubReport
{
    /** Valid cache entries kept (after dedup). */
    std::size_t cacheEntries = 0;

    /** Cache entries moved to the quarantine file. */
    std::size_t cacheQuarantined = 0;

    /** The index was rewritten compact and checksummed. */
    bool cacheCompacted = false;

    /** Journal jobs still owed an execution (left pending). */
    std::size_t journalPending = 0;

    /** Corpus `.plt` files examined (0 when no corpus dir). */
    std::size_t corpusFiles = 0;

    std::size_t corpusOk = 0;
    std::size_t corpusSalvaged = 0;

    /** Corrupt files renamed aside with `.quarantined`. */
    std::size_t corpusQuarantined = 0;

    /** corpus.json was regenerated from the surviving files. */
    bool manifestWritten = false;
};

/**
 * Scrub @p stateDir (cache index + journal) and, when non-empty,
 * @p corpusDir. Repairs are durable before return (temp-file +
 * rename + fsync). @throws UserError when the state dir itself is
 * unusable; per-entry and per-file corruption is repaired and
 * reported, never thrown.
 */
ScrubReport scrubState(const std::string &stateDir,
                       const std::string &corpusDir);

/** Render @p report as one JSON object (the CLI's --json output). */
std::string scrubReportJson(const ScrubReport &report);

} // namespace perple::serve

#endif // PERPLE_SERVE_SCRUB_H
