#include "serve/journal.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <fstream>
#include <unordered_map>
#include <unistd.h>

#include "common/cli.h"
#include "common/error.h"
#include "common/hash.h"
#include "common/inject.h"
#include "common/strings.h"
#include "serve/json.h"

namespace perple::serve
{

namespace
{

/** Parse a 16-hex-digit key; false on anything else. */
bool
parseKeyHex(const std::string &hex, std::uint64_t &key)
{
    if (hex.size() != 16)
        return false;
    key = 0;
    for (const char c : hex) {
        key <<= 4;
        if (c >= '0' && c <= '9')
            key |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            key |= static_cast<std::uint64_t>(c - 'a' + 10);
        else
            return false;
    }
    return true;
}

/** fsync the directory containing @p filePath (rename durability). */
void
syncParentDir(const std::string &filePath)
{
    const std::size_t slash = filePath.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : filePath.substr(0, slash);
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
}

std::string
acceptedRecord(std::uint64_t key, const std::string &submitJson)
{
    std::string line = "{\"txn\":\"accepted\",\"key\":\"";
    line += common::hashToHex(key);
    line += "\",\"request\":";
    line += submitJson;
    line += "}\n";
    return line;
}

} // namespace

JobJournal::JobJournal(const std::string &stateDir)
{
    common::ensureWritableDir("state dir", stateDir);
    path_ = stateDir + "/journal.jsonl";

    // Replay: per-key balance of accepted minus done/failed records,
    // remembering the latest request text. A torn or alien line is
    // dropped silently — the salvage policy shared with the cache
    // index: lose at most the record being appended when the writer
    // died, never an earlier one.
    struct Balance
    {
        long long count = 0;
        std::string submitJson;
        std::size_t firstSeen = 0; ///< replay order for re-enqueue
    };
    std::unordered_map<std::uint64_t, Balance> balances;
    std::size_t order = 0;
    std::ifstream in(path_);
    if (in) {
        std::string line;
        while (std::getline(in, line)) {
            try {
                const Json record = Json::parse(line);
                const std::string txn = record.stringOr("txn", "");
                std::uint64_t key = 0;
                if (!parseKeyHex(record.stringOr("key", ""), key))
                    continue;
                if (txn == "accepted") {
                    const Json *request = record.find("request");
                    if (request == nullptr || !request->isObject())
                        continue;
                    Balance &balance = balances[key];
                    if (balance.count == 0 &&
                        balance.submitJson.empty())
                        balance.firstSeen = order++;
                    ++balance.count;
                    balance.submitJson = request->dump();
                } else if (txn == "done" || txn == "failed") {
                    Balance &balance = balances[key];
                    if (balance.count == 0 &&
                        balance.submitJson.empty())
                        balance.firstSeen = order++;
                    --balance.count;
                } // "started" is informational; no balance change.
            } catch (const Error &) {
                // Torn/alien line: drop.
            }
        }
    }
    std::vector<std::pair<std::size_t, PendingJob>> ordered;
    for (const auto &[key, balance] : balances)
        if (balance.count > 0 && !balance.submitJson.empty())
            ordered.emplace_back(balance.firstSeen,
                                 PendingJob{key, balance.submitJson});
    std::sort(ordered.begin(), ordered.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    for (auto &[seen, job] : ordered)
        pending_.push_back(std::move(job));

    fd_ = ::open(path_.c_str(),
                 O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
    checkUser(fd_ >= 0, format("cannot open job journal %s: %s",
                               path_.c_str(), std::strerror(errno)));
}

JobJournal::~JobJournal()
{
    if (fd_ >= 0)
        ::close(fd_);
}

bool
JobJournal::append(const std::string &line)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ < 0) {
        degraded_ = true;
        ++failures_;
        return false;
    }
    const char *data = line.data();
    std::size_t remaining = line.size();
    while (remaining > 0) {
        const ssize_t wrote =
            common::inject::write(fd_, data, remaining);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            degraded_ = true;
            ++failures_;
            return false;
        }
        data += wrote;
        remaining -= static_cast<std::size_t>(wrote);
    }
    if (common::inject::fsync(fd_) != 0) {
        degraded_ = true;
        ++failures_;
        return false;
    }
    ++writes_;
    return true;
}

bool
JobJournal::accepted(std::uint64_t key, const std::string &submitJson)
{
    return append(acceptedRecord(key, submitJson));
}

bool
JobJournal::started(std::uint64_t key)
{
    return append(format("{\"txn\":\"started\",\"key\":\"%s\"}\n",
                         common::hashToHex(key).c_str()));
}

bool
JobJournal::done(std::uint64_t key)
{
    return append(format("{\"txn\":\"done\",\"key\":\"%s\"}\n",
                         common::hashToHex(key).c_str()));
}

bool
JobJournal::failed(std::uint64_t key, const std::string &reason)
{
    return append(format("{\"txn\":\"failed\",\"key\":\"%s\","
                         "\"reason\":\"%s\"}\n",
                         common::hashToHex(key).c_str(),
                         jsonEscape(reason).c_str()));
}

void
JobJournal::compact(const std::vector<PendingJob> &keep)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const std::string temp = path_ + ".tmp";
    const int fd = ::open(temp.c_str(),
                          O_WRONLY | O_TRUNC | O_CREAT | O_CLOEXEC,
                          0644);
    if (fd < 0) {
        degraded_ = true;
        ++failures_;
        return;
    }
    bool ok = true;
    for (const PendingJob &job : keep) {
        const std::string line =
            acceptedRecord(job.key, job.submitJson);
        const char *data = line.data();
        std::size_t remaining = line.size();
        while (ok && remaining > 0) {
            const ssize_t wrote =
                common::inject::write(fd, data, remaining);
            if (wrote < 0) {
                if (errno == EINTR)
                    continue;
                ok = false;
                break;
            }
            data += wrote;
            remaining -= static_cast<std::size_t>(wrote);
        }
    }
    ok = ok && common::inject::fsync(fd) == 0;
    ::close(fd);
    ok = ok && std::rename(temp.c_str(), path_.c_str()) == 0;
    if (!ok) {
        ::unlink(temp.c_str());
        degraded_ = true;
        ++failures_;
        return; // The uncompacted journal is intact; just bigger.
    }
    syncParentDir(path_);
    // The append fd now points at the unlinked pre-compaction file;
    // reopen onto the compacted one.
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = ::open(path_.c_str(),
                 O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
    if (fd_ < 0) {
        degraded_ = true;
        ++failures_;
    }
}

bool
JobJournal::degraded() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return degraded_;
}

std::uint64_t
JobJournal::writes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return writes_;
}

std::uint64_t
JobJournal::failures() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return failures_;
}

void
JobJournal::sync()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ >= 0)
        ::fsync(fd_);
}

} // namespace perple::serve
