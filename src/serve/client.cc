#include "serve/client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

#include "common/cli.h"
#include "common/error.h"
#include "common/strings.h"

namespace perple::serve
{

namespace
{

/** splitmix64 step — deterministic jitter without a global RNG. */
std::uint64_t
mixJitter(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

Client::Client(const std::string &socketPath)
{
    // Path-shape problems (too long, unwritable parent) are the
    // caller's bug and stay fatal; an absent or refusing socket is a
    // daemon-liveness condition and throws the retryable
    // ConnectError instead.
    common::parseSocketPathArg("socket", socketPath);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    checkUser(fd_ >= 0, format("cannot create socket: %s",
                               std::strerror(errno)));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const int error = errno;
        ::close(fd_);
        fd_ = -1;
        throw ConnectError(
            format("cannot connect to %s: %s (is the daemon "
                   "running?)",
                   socketPath.c_str(), std::strerror(error)));
    }
}

Client::~Client()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
Client::sendLine(const std::string &line)
{
    std::string framed = line;
    framed += '\n';
    const char *data = framed.data();
    std::size_t remaining = framed.size();
    while (remaining > 0) {
        const ssize_t wrote =
            ::send(fd_, data, remaining, MSG_NOSIGNAL);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EPIPE || errno == ECONNRESET ||
                errno == ECONNREFUSED)
                throw ConnectError(
                    format("daemon connection lost on write: %s",
                           std::strerror(errno)));
            fatal(format("daemon connection write failed: %s",
                         std::strerror(errno)));
        }
        data += wrote;
        remaining -= static_cast<std::size_t>(wrote);
    }
}

std::optional<std::string>
Client::readLine()
{
    while (true) {
        const std::size_t nl = pending_.find('\n');
        if (nl != std::string::npos) {
            std::string line = pending_.substr(0, nl);
            pending_.erase(0, nl + 1);
            if (line.empty())
                continue;
            return line;
        }
        char buffer[4096];
        const ssize_t got = ::recv(fd_, buffer, sizeof(buffer), 0);
        if (got < 0) {
            if (errno == EINTR)
                continue;
            if (errno == ECONNRESET)
                throw ConnectError(
                    format("daemon connection lost on read: %s",
                           std::strerror(errno)));
            fatal(format("daemon connection read failed: %s",
                         std::strerror(errno)));
        }
        if (got == 0)
            return std::nullopt;
        pending_.append(buffer, static_cast<std::size_t>(got));
    }
}

SubmitOutcome
Client::submitAndWait(const SubmitRequest &request)
{
    sendLine(submitRequestToJson(request).dump());

    SubmitOutcome outcome;
    bool haveJob = false;
    while (true) {
        const auto line = readLine();
        // A close mid-submit is the daemon dying (or draining us
        // away); retryable, since resubmission is idempotent.
        if (!line.has_value())
            throw ConnectError(
                "daemon closed the connection mid-submit");
        const Json event = Json::parse(*line);
        const std::string kind = event.stringOr("event", "");
        const std::uint64_t job = event.uintOr("job", 0);

        // The first job-bearing event of this conversation pins the
        // id; later events for other jobs on a shared connection are
        // not ours.
        if (!haveJob && job != 0 &&
            (kind == "accepted" || kind == "rejected" ||
             kind == "error")) {
            outcome.jobId = job;
            haveJob = true;
        }
        if (haveJob && job != outcome.jobId)
            continue;

        if (kind == "accepted") {
            outcome.keyHex = event.stringOr("key", "");
        } else if (kind == "started") {
            continue;
        } else if (kind == "result") {
            outcome.terminal = kind;
            outcome.cached = event.boolOr("cached", false);
            outcome.coalesced = event.boolOr("coalesced", false);
            const Json *result = event.find("result");
            checkUser(result != nullptr,
                      "malformed result event from daemon");
            outcome.resultText = result->dump();
            outcome.event = event;
            return outcome;
        } else if (kind == "rejected" || kind == "error") {
            outcome.terminal = kind;
            outcome.event = event;
            return outcome;
        }
    }
}

Json
Client::status()
{
    sendLine("{\"op\":\"status\"}");
    while (true) {
        const auto line = readLine();
        checkUser(line.has_value(),
                  "daemon closed the connection mid-status");
        const Json event = Json::parse(*line);
        if (event.stringOr("event", "") == "status")
            return event;
    }
}

bool
Client::ping()
{
    sendLine("{\"op\":\"ping\"}");
    const auto line = readLine();
    if (!line)
        return false;
    return Json::parse(*line).stringOr("event", "") == "pong";
}

bool
Client::shutdown()
{
    sendLine("{\"op\":\"shutdown\"}");
    const auto line = readLine();
    if (!line)
        return false;
    return Json::parse(*line).stringOr("event", "") ==
           "shutting-down";
}

SubmitOutcome
submitWithRetry(const std::string &socketPath,
                const SubmitRequest &request,
                const RetryPolicy &policy)
{
    const int attempts = std::max(1, policy.maxAttempts);
    std::uint64_t jitterState = policy.jitterSeed;
    double delay = policy.initialDelaySeconds;
    for (int attempt = 1;; ++attempt) {
        try {
            Client client(socketPath);
            return client.submitAndWait(request);
        } catch (const ConnectError &) {
            if (attempt >= attempts)
                throw;
        }
        // Full jitter on the exponential schedule: sleep a uniform
        // fraction of the capped delay so a fleet of retrying
        // tenants doesn't stampede the restarting daemon in step.
        const double capped =
            std::min(delay, policy.maxDelaySeconds);
        const double fraction =
            0.5 + 0.5 * (static_cast<double>(mixJitter(jitterState) >>
                                             11) /
                         9007199254740992.0);
        std::this_thread::sleep_for(std::chrono::duration<double>(
            capped * fraction));
        delay *= 2.0;
    }
}

} // namespace perple::serve
