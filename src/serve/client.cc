#include "serve/client.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/cli.h"
#include "common/error.h"
#include "common/strings.h"

namespace perple::serve
{

Client::Client(const std::string &socketPath)
{
    common::parseExistingSocketPath("socket", socketPath);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    checkUser(fd_ >= 0, format("cannot create socket: %s",
                               std::strerror(errno)));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const int error = errno;
        ::close(fd_);
        fd_ = -1;
        fatal(format("cannot connect to %s: %s (is the daemon "
                     "running?)",
                     socketPath.c_str(), std::strerror(error)));
    }
}

Client::~Client()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
Client::sendLine(const std::string &line)
{
    std::string framed = line;
    framed += '\n';
    const char *data = framed.data();
    std::size_t remaining = framed.size();
    while (remaining > 0) {
        const ssize_t wrote =
            ::send(fd_, data, remaining, MSG_NOSIGNAL);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            fatal(format("daemon connection write failed: %s",
                         std::strerror(errno)));
        }
        data += wrote;
        remaining -= static_cast<std::size_t>(wrote);
    }
}

std::optional<std::string>
Client::readLine()
{
    while (true) {
        const std::size_t nl = pending_.find('\n');
        if (nl != std::string::npos) {
            std::string line = pending_.substr(0, nl);
            pending_.erase(0, nl + 1);
            if (line.empty())
                continue;
            return line;
        }
        char buffer[4096];
        const ssize_t got = ::recv(fd_, buffer, sizeof(buffer), 0);
        if (got < 0) {
            if (errno == EINTR)
                continue;
            fatal(format("daemon connection read failed: %s",
                         std::strerror(errno)));
        }
        if (got == 0)
            return std::nullopt;
        pending_.append(buffer, static_cast<std::size_t>(got));
    }
}

SubmitOutcome
Client::submitAndWait(const SubmitRequest &request)
{
    sendLine(submitRequestToJson(request).dump());

    SubmitOutcome outcome;
    bool haveJob = false;
    while (true) {
        const auto line = readLine();
        checkUser(line.has_value(),
                  "daemon closed the connection mid-submit");
        const Json event = Json::parse(*line);
        const std::string kind = event.stringOr("event", "");
        const std::uint64_t job = event.uintOr("job", 0);

        // The first job-bearing event of this conversation pins the
        // id; later events for other jobs on a shared connection are
        // not ours.
        if (!haveJob && job != 0 &&
            (kind == "accepted" || kind == "rejected" ||
             kind == "error")) {
            outcome.jobId = job;
            haveJob = true;
        }
        if (haveJob && job != outcome.jobId)
            continue;

        if (kind == "accepted") {
            outcome.keyHex = event.stringOr("key", "");
        } else if (kind == "started") {
            continue;
        } else if (kind == "result") {
            outcome.terminal = kind;
            outcome.cached = event.boolOr("cached", false);
            outcome.coalesced = event.boolOr("coalesced", false);
            const Json *result = event.find("result");
            checkUser(result != nullptr,
                      "malformed result event from daemon");
            outcome.resultText = result->dump();
            outcome.event = event;
            return outcome;
        } else if (kind == "rejected" || kind == "error") {
            outcome.terminal = kind;
            outcome.event = event;
            return outcome;
        }
    }
}

Json
Client::status()
{
    sendLine("{\"op\":\"status\"}");
    while (true) {
        const auto line = readLine();
        checkUser(line.has_value(),
                  "daemon closed the connection mid-status");
        const Json event = Json::parse(*line);
        if (event.stringOr("event", "") == "status")
            return event;
    }
}

bool
Client::ping()
{
    sendLine("{\"op\":\"ping\"}");
    const auto line = readLine();
    if (!line)
        return false;
    return Json::parse(*line).stringOr("event", "") == "pong";
}

bool
Client::shutdown()
{
    sendLine("{\"op\":\"shutdown\"}");
    const auto line = readLine();
    if (!line)
        return false;
    return Json::parse(*line).stringOr("event", "") ==
           "shutting-down";
}

} // namespace perple::serve
