#include "serve/cache.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <map>
#include <unistd.h>

#include "common/cli.h"
#include "common/error.h"
#include "common/hash.h"
#include "common/inject.h"
#include "common/strings.h"
#include "serve/json.h"

namespace perple::serve
{

namespace
{

/** The self-check hash recorded per index line. */
std::string
resultSum(const std::string &resultText)
{
    return common::hashToHex(common::fnv1a64(
        common::kFnv1a64Offset, resultText.data(), resultText.size()));
}

bool
parseKeyHex(const std::string &hex, std::uint64_t &key)
{
    if (hex.size() != 16)
        return false;
    key = 0;
    for (const char c : hex) {
        key <<= 4;
        if (c >= '0' && c <= '9')
            key |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            key |= static_cast<std::uint64_t>(c - 'a' + 10);
        else
            return false;
    }
    return true;
}

enum class LineVerdict
{
    Ok,         ///< Load the entry.
    Torn,       ///< Unparsable (torn tail / alien line): drop silently.
    Quarantine, ///< Parses but fails the self-check: never serve.
};

/** Validate one index line; fills key/result on Ok. */
LineVerdict
checkIndexLine(const std::string &line, std::uint64_t &key,
               std::string &result)
{
    try {
        const Json entry = Json::parse(line);
        const Json *keyField = entry.find("key");
        const Json *resultField = entry.find("result");
        if (keyField == nullptr || resultField == nullptr ||
            !resultField->isObject())
            return LineVerdict::Torn;
        if (!parseKeyHex(keyField->asString(), key))
            return LineVerdict::Torn;
        result = resultField->dump();

        // Scrub self-checks. The recorded sum must re-hash from the
        // stored result bytes, and the result object's own "key"
        // field (always present in daemon-built results) must agree
        // with the line's address — either mismatch means the entry
        // no longer says what was stored under it.
        const Json *sumField = entry.find("sum");
        if (sumField != nullptr &&
            sumField->asString() != resultSum(result))
            return LineVerdict::Quarantine;
        const Json *embeddedKey = resultField->find("key");
        if (embeddedKey != nullptr &&
            embeddedKey->kind() == Json::Kind::String &&
            embeddedKey->asString() != keyField->asString())
            return LineVerdict::Quarantine;
        return LineVerdict::Ok;
    } catch (const Error &) {
        return LineVerdict::Torn;
    }
}

std::string
indexLine(std::uint64_t key, const std::string &resultText)
{
    std::string line = "{\"key\":\"";
    line += common::hashToHex(key);
    line += "\",\"sum\":\"";
    line += resultSum(resultText);
    line += "\",\"result\":";
    line += resultText;
    line += "}\n";
    return line;
}

void
syncParentDir(const std::string &filePath)
{
    const std::size_t slash = filePath.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : filePath.substr(0, slash);
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
}

} // namespace

ResultCache::ResultCache(const std::string &stateDir)
{
    common::ensureWritableDir("state dir", stateDir);
    path_ = stateDir + "/cache-index.jsonl";
    quarantine_ = stateDir + "/cache-quarantine.jsonl";

    // Replay an existing index before opening for append, so a
    // restarted daemon serves everything its predecessor stored —
    // except entries failing the self-check, which are moved to the
    // quarantine file instead of being served corrupt.
    std::ifstream in(path_);
    if (in) {
        std::ofstream quarantineOut;
        std::string line;
        while (std::getline(in, line)) {
            std::uint64_t key = 0;
            std::string result;
            switch (checkIndexLine(line, key, result)) {
            case LineVerdict::Ok:
                entries_[key] = std::move(result);
                ++loaded_;
                break;
            case LineVerdict::Torn: break;
            case LineVerdict::Quarantine:
                if (!quarantineOut.is_open())
                    quarantineOut.open(quarantine_, std::ios::app);
                quarantineOut << line << '\n';
                ++quarantined_;
                break;
            }
        }
        if (quarantined_ > 0)
            std::fprintf(stderr,
                         "perple_serve: quarantined %zu corrupt cache "
                         "entr%s to %s\n",
                         quarantined_, quarantined_ == 1 ? "y" : "ies",
                         quarantine_.c_str());
    }

    fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                 0644);
    checkUser(fd_ >= 0, format("cannot open cache index %s: %s",
                               path_.c_str(), std::strerror(errno)));
}

ResultCache::~ResultCache()
{
    if (fd_ >= 0)
        ::close(fd_);
}

std::optional<std::string>
ResultCache::lookup(std::uint64_t key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end())
        return std::nullopt;
    return it->second;
}

void
ResultCache::store(std::uint64_t key, const std::string &resultText)
{
    const std::string line = indexLine(key, resultText);

    std::lock_guard<std::mutex> lock(mutex_);
    const char *data = line.data();
    std::size_t remaining = line.size();
    while (remaining > 0) {
        const ssize_t wrote =
            common::inject::write(fd_, data, remaining);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            fatal(format("cache index append failed: %s",
                         std::strerror(errno)));
        }
        data += wrote;
        remaining -= static_cast<std::size_t>(wrote);
    }
    if (common::inject::fsync(fd_) != 0) {
        // The entry is written (page cache) but not crash-durable.
        // Serving it is still correct; only a crash before the kernel
        // flushes could lose it — degrade and count, don't fail the
        // job that produced a perfectly good result.
        if (syncFailures_ == 0)
            std::fprintf(stderr,
                         "perple_serve: warning: cache index fsync "
                         "failed (%s); entries are no longer "
                         "crash-durable\n",
                         std::strerror(errno));
        ++syncFailures_;
    }
    entries_[key] = resultText;
}

void
ResultCache::sync()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ >= 0)
        ::fsync(fd_);
}

bool
ResultCache::rewriteCompact()
{
    std::lock_guard<std::mutex> lock(mutex_);
    const std::string temp = path_ + ".tmp";
    const int fd = ::open(temp.c_str(),
                          O_WRONLY | O_TRUNC | O_CREAT | O_CLOEXEC,
                          0644);
    if (fd < 0)
        return false;

    // Deterministic key order so two scrubs of the same state write
    // byte-identical indexes.
    std::map<std::uint64_t, const std::string *> ordered;
    for (const auto &[key, result] : entries_)
        ordered.emplace(key, &result);

    bool ok = true;
    for (const auto &[key, result] : ordered) {
        const std::string line = indexLine(key, *result);
        const char *data = line.data();
        std::size_t remaining = line.size();
        while (ok && remaining > 0) {
            const ssize_t wrote = ::write(fd, data, remaining);
            if (wrote < 0) {
                if (errno == EINTR)
                    continue;
                ok = false;
                break;
            }
            data += wrote;
            remaining -= static_cast<std::size_t>(wrote);
        }
    }
    ok = ok && ::fsync(fd) == 0;
    ::close(fd);
    ok = ok && std::rename(temp.c_str(), path_.c_str()) == 0;
    if (!ok) {
        ::unlink(temp.c_str());
        return false;
    }
    syncParentDir(path_);
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                 0644);
    return fd_ >= 0;
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::size_t
ResultCache::loadedEntries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return loaded_;
}

std::size_t
ResultCache::quarantined() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return quarantined_;
}

std::uint64_t
ResultCache::syncFailures() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return syncFailures_;
}

} // namespace perple::serve
