#include "serve/cache.h"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "common/cli.h"
#include "common/error.h"
#include "common/hash.h"
#include "common/strings.h"
#include "serve/json.h"

namespace perple::serve
{

namespace
{

/** Parse one index line; false (never throws) on a torn/alien line. */
bool
parseIndexLine(const std::string &line, std::uint64_t &key,
               std::string &result)
{
    try {
        const Json entry = Json::parse(line);
        const Json *keyField = entry.find("key");
        const Json *resultField = entry.find("result");
        if (keyField == nullptr || resultField == nullptr ||
            !resultField->isObject())
            return false;
        const std::string &hex = keyField->asString();
        if (hex.size() != 16)
            return false;
        key = 0;
        for (const char c : hex) {
            key <<= 4;
            if (c >= '0' && c <= '9')
                key |= static_cast<std::uint64_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                key |= static_cast<std::uint64_t>(c - 'a' + 10);
            else
                return false;
        }
        result = resultField->dump();
        return true;
    } catch (const Error &) {
        return false;
    }
}

} // namespace

ResultCache::ResultCache(const std::string &stateDir)
{
    common::ensureWritableDir("state dir", stateDir);
    path_ = stateDir + "/cache-index.jsonl";

    // Replay an existing index before opening for append, so a
    // restarted daemon serves everything its predecessor stored.
    std::ifstream in(path_);
    if (in) {
        std::string line;
        while (std::getline(in, line)) {
            std::uint64_t key = 0;
            std::string result;
            if (parseIndexLine(line, key, result)) {
                entries_[key] = std::move(result);
                ++loaded_;
            }
        }
    }

    fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                 0644);
    checkUser(fd_ >= 0, format("cannot open cache index %s: %s",
                               path_.c_str(), std::strerror(errno)));
}

ResultCache::~ResultCache()
{
    if (fd_ >= 0)
        ::close(fd_);
}

std::optional<std::string>
ResultCache::lookup(std::uint64_t key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end())
        return std::nullopt;
    return it->second;
}

void
ResultCache::store(std::uint64_t key, const std::string &resultText)
{
    std::string line = "{\"key\":\"";
    line += common::hashToHex(key);
    line += "\",\"result\":";
    line += resultText;
    line += "}\n";

    std::lock_guard<std::mutex> lock(mutex_);
    const char *data = line.data();
    std::size_t remaining = line.size();
    while (remaining > 0) {
        const ssize_t wrote = ::write(fd_, data, remaining);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            fatal(format("cache index append failed: %s",
                         std::strerror(errno)));
        }
        data += wrote;
        remaining -= static_cast<std::size_t>(wrote);
    }
    checkUser(::fsync(fd_) == 0,
              format("cache index fsync failed: %s",
                     std::strerror(errno)));
    entries_[key] = resultText;
}

void
ResultCache::sync()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ >= 0)
        ::fsync(fd_);
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::size_t
ResultCache::loadedEntries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return loaded_;
}

} // namespace perple::serve
