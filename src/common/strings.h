/**
 * @file
 * Small string utilities used by the parser, writers and reporters.
 *
 * GCC 12 ships no usable std::format, so format() below provides the few
 * printf-style conveniences PerpLE needs without pulling in a dependency.
 */

#ifndef PERPLE_COMMON_STRINGS_H
#define PERPLE_COMMON_STRINGS_H

#include <cstdarg>
#include <cstdint>
#include <string>
#include <vector>

namespace perple
{

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** vprintf-style counterpart of format(). */
std::string vformat(const char *fmt, std::va_list args);

/** Strip leading and trailing whitespace. */
std::string trim(const std::string &text);

/**
 * Split @p text on @p delimiter.
 *
 * @param text Input text.
 * @param delimiter Single separator character.
 * @param keep_empty Whether empty fields are preserved.
 * @return The list of fields, each already trimmed of whitespace.
 */
std::vector<std::string> split(const std::string &text, char delimiter,
                               bool keep_empty = false);

/** True if @p text begins with @p prefix. */
bool startsWith(const std::string &text, const std::string &prefix);

/** Join the items of @p parts with @p separator. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &separator);

/** Lower-case an ASCII string. */
std::string toLower(const std::string &text);

/**
 * Strict full-string numeric parses, built on std::from_chars: locale
 * independent, rejecting empty input, leading/trailing garbage
 * ("7abc"), and out-of-range values. These are what untrusted text —
 * trace metadata, environment variables, client payloads — must be
 * parsed with; atoi-family parses silently truncate or mis-parse
 * under a comma-decimal locale.
 */
bool parseFullInt64(const std::string &text, std::int64_t &out);

/** See parseFullInt64; base-10 unsigned. */
bool parseFullUint64(const std::string &text, std::uint64_t &out);

/** See parseFullInt64; decimal floating point, "C"-locale syntax. */
bool parseFullDouble(const std::string &text, double &out);

} // namespace perple

#endif // PERPLE_COMMON_STRINGS_H
