/**
 * @file
 * Env-gated fault injection for durable-write paths.
 *
 * The journal, the cache index and the trace writers all promise
 * crash-durability ("an entry a client was served can never be lost"),
 * and those promises are only testable if short writes, full disks and
 * failing fsyncs are first-class test inputs rather than incidents one
 * hopes for. This shim wraps the two syscalls those writers depend on;
 * with no injection armed the wrappers are one relaxed atomic load
 * away from the raw syscall.
 *
 * Faults are armed by environment variables whose value N is a 1-based
 * call index *through this shim*, process-wide:
 *
 *   PERPLE_INJECT_SHORT_WRITE=N  the Nth write() persists only half
 *                                the requested bytes (an honest short
 *                                write: the partial count is returned
 *                                and the caller's continuation logic
 *                                runs); every later write fails with
 *                                ENOSPC — the "disk filled mid-append"
 *                                shape that produces a torn tail.
 *   PERPLE_INJECT_ENOSPC=N       writes from the Nth on fail with
 *                                ENOSPC, persisting nothing.
 *   PERPLE_INJECT_FSYNC_FAIL=N   fsyncs from the Nth on fail with EIO
 *                                (data may be in the page cache but is
 *                                not durable).
 *
 * The variables are read once at first use; tests that arm and disarm
 * faults between phases call reset() to re-read them and restart the
 * call counters. Because the gate is the environment, forked children
 * (supervised workers writing `.plt` captures) inherit the armed
 * faults — deliberately: a daemon must survive its writers failing
 * wherever they run.
 */

#ifndef PERPLE_COMMON_INJECT_H
#define PERPLE_COMMON_INJECT_H

#include <cstddef>
#include <sys/types.h>

namespace perple::common::inject
{

/** What decideWrite() told the caller to do. */
enum class Fault
{
    None,   ///< Proceed normally.
    Short,  ///< Persist only `allowed` bytes, then report success for
            ///< exactly those bytes.
    Enospc, ///< Persist nothing; fail with ENOSPC.
};

/** One write decision (for writers not using the write() wrapper). */
struct WriteDecision
{
    Fault fault = Fault::None;
    std::size_t allowed = 0; ///< Bytes to persist when fault==Short.
};

/** True when any injection variable is armed (cheap fast-path gate). */
bool armed();

/**
 * Consume one write-call slot and decide its fate for a request of
 * @p requested bytes. Stdio-based writers (the trace writer) call this
 * directly; fd-based writers use write() below.
 */
WriteDecision decideWrite(std::size_t requested);

/** Consume one fsync-call slot; true = this fsync must fail (EIO). */
bool decideFsync();

/** ::write with injection applied; sets errno=ENOSPC on a fault. */
ssize_t write(int fd, const void *data, std::size_t count);

/** ::fsync with injection applied; sets errno=EIO on a fault. */
int fsync(int fd);

/** Re-read the environment and restart the call counters (tests). */
void reset();

} // namespace perple::common::inject

#endif // PERPLE_COMMON_INJECT_H
