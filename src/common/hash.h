/**
 * @file
 * Content hashing for dedup keys.
 *
 * The trace-corpus layer keys runs by a hash of their canonical
 * serialized identity (test text + machine config + seed + backend +
 * iteration count, see src/trace/corpus.h). FNV-1a over 64 bits is
 * enough for that job: keys are canonical strings (no adversarial
 * collisions to defend against — a forged .plt already fails CRC or
 * structural validation first), and at the 10k-run campaign scale the
 * birthday collision probability is ~3e-12. The function is
 * byte-order-free and dependency-free, so manifests hash identically
 * on every host.
 */

#ifndef PERPLE_COMMON_HASH_H
#define PERPLE_COMMON_HASH_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace perple::common
{

/** FNV-1a offset basis (the hash of the empty string). */
inline constexpr std::uint64_t kFnv1a64Offset = 0xcbf29ce484222325ULL;

/** Fold @p bytes into @p state (FNV-1a, 64-bit). */
std::uint64_t fnv1a64(std::uint64_t state, const void *bytes,
                      std::size_t count);

/** One-shot FNV-1a 64 of @p text. */
inline std::uint64_t
fnv1a64(const std::string &text)
{
    return fnv1a64(kFnv1a64Offset, text.data(), text.size());
}

/** Render @p hash as fixed-width lowercase hex (manifest form). */
std::string hashToHex(std::uint64_t hash);

} // namespace perple::common

#endif // PERPLE_COMMON_HASH_H
