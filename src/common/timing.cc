#include "common/timing.h"

#include "common/strings.h"

namespace perple
{

void
PhaseTimer::start(const std::string &phase)
{
    stop();
    current_ = phase;
    running_ = true;
    timer_.restart();
}

void
PhaseTimer::stop()
{
    if (!running_)
        return;
    phases_[current_] += timer_.elapsedNs();
    running_ = false;
}

void
PhaseTimer::addNs(const std::string &phase, std::int64_t ns)
{
    phases_[phase] += ns;
}

std::int64_t
PhaseTimer::phaseNs(const std::string &phase) const
{
    const auto it = phases_.find(phase);
    return it == phases_.end() ? 0 : it->second;
}

std::int64_t
PhaseTimer::totalNs() const
{
    std::int64_t total = 0;
    for (const auto &[name, ns] : phases_)
        total += ns;
    return total;
}

std::string
formatDuration(std::int64_t ns)
{
    const double abs_ns = static_cast<double>(ns < 0 ? -ns : ns);
    if (abs_ns < 1e3)
        return format("%lld ns", static_cast<long long>(ns));
    if (abs_ns < 1e6)
        return format("%.2f us", static_cast<double>(ns) / 1e3);
    if (abs_ns < 1e9)
        return format("%.2f ms", static_cast<double>(ns) / 1e6);
    return format("%.3f s", static_cast<double>(ns) / 1e9);
}

} // namespace perple
