#include "common/thread_pool.h"

#include <atomic>
#include <exception>
#include <map>
#include <memory>
#include <pthread.h>

#include "common/error.h"

namespace perple::common
{

namespace
{

/**
 * Depth of parallelFor chunk bodies on this thread's stack. A chunk
 * body that calls parallelFor again (directly or through a callback)
 * must not enqueue more work: every pool thread could end up blocked
 * in the nested call's completion wait while the nested chunks sit in
 * the queue with nobody left in workerLoop to run them — a deadlock.
 * Nested calls therefore run their whole range inline (see
 * parallelFor); the counter works for any pool, shared or private,
 * since a thread can only ever be inside one pool's chunk at a time
 * per stack frame.
 */
thread_local int g_chunk_depth = 0;

struct ChunkDepthScope
{
    ChunkDepthScope() { ++g_chunk_depth; }
    ~ChunkDepthScope() { --g_chunk_depth; }
};

} // namespace

ThreadPool::ThreadPool(std::size_t threads) : num_threads_(threads)
{
    checkUser(threads >= 1, "a thread pool needs at least one thread");
    workers_.reserve(threads - 1);
    for (std::size_t i = 0; i + 1 < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [this] { return stopping_ || !tasks_.empty(); });
            if (tasks_.empty())
                return; // stopping_, queue drained.
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        task();
    }
}

void
ThreadPool::parallelFor(std::int64_t begin, std::int64_t end,
                        std::int64_t grain, const RangeFn &fn)
{
    if (end <= begin)
        return;

    // Re-entrant call from inside a chunk body: run serially on this
    // thread. Dispatching would risk deadlock (every pool thread
    // waiting on a nested job whose chunks nobody can run) and would
    // hand out shard indices that collide with the outer call's.
    if (g_chunk_depth > 0) {
        fn(0, begin, end);
        return;
    }

    const std::int64_t total = end - begin;
    const std::int64_t min_chunk = grain < 1 ? 1 : grain;
    const auto max_chunks =
        static_cast<std::size_t>((total + min_chunk - 1) / min_chunk);
    const std::size_t chunks = std::min(num_threads_, max_chunks);

    if (chunks <= 1) {
        ChunkDepthScope depth;
        fn(0, begin, end);
        return;
    }

    // One completion record per call; the pool itself can serve
    // several concurrent parallelFor calls (tasks queue FIFO).
    struct Job
    {
        std::mutex done_mutex;
        std::condition_variable done;
        std::size_t remaining;
        std::exception_ptr error;
    };
    auto job = std::make_shared<Job>();
    job->remaining = chunks - 1;

    const auto chunk_bounds = [begin, total, chunks](std::size_t d) {
        return begin + static_cast<std::int64_t>(
                           (static_cast<__int128>(total) *
                            static_cast<__int128>(d)) /
                           static_cast<__int128>(chunks));
    };

    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t d = 1; d < chunks; ++d) {
            tasks_.emplace_back([job, &fn, d, chunk_bounds] {
                ChunkDepthScope depth;
                try {
                    fn(d, chunk_bounds(d), chunk_bounds(d + 1));
                } catch (...) {
                    std::lock_guard<std::mutex> done_lock(
                        job->done_mutex);
                    if (!job->error)
                        job->error = std::current_exception();
                }
                {
                    std::lock_guard<std::mutex> done_lock(
                        job->done_mutex);
                    --job->remaining;
                }
                job->done.notify_one();
            });
        }
    }
    wake_.notify_all();

    // The calling thread is shard 0.
    std::exception_ptr own_error;
    try {
        ChunkDepthScope depth;
        fn(0, chunk_bounds(0), chunk_bounds(1));
    } catch (...) {
        own_error = std::current_exception();
    }

    std::unique_lock<std::mutex> done_lock(job->done_mutex);
    job->done.wait(done_lock, [&job] { return job->remaining == 0; });
    if (own_error)
        std::rethrow_exception(own_error);
    if (job->error)
        std::rethrow_exception(job->error);
}

std::size_t
ThreadPool::hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<std::size_t>(n);
}

std::size_t
ThreadPool::resolveThreads(std::size_t requested)
{
    if (requested == 0)
        return hardwareThreads();
    return requested < kMaxThreads ? requested : kMaxThreads;
}

namespace
{

/**
 * The shared-pool registry. Pools are raw pointers on purpose: a
 * forked child must be able to drop them without running destructors
 * (which would join worker threads that did not survive the fork), so
 * ownership is "leaked for the process lifetime" on both sides.
 */
struct SharedRegistry
{
    std::mutex mutex;
    std::map<std::size_t, ThreadPool *> pools;
};

SharedRegistry &
sharedRegistry()
{
    static SharedRegistry *registry = new SharedRegistry;
    return *registry;
}

extern "C" void
threadPoolAtforkPrepare()
{
    // Hold the registry lock across fork() so the child never sees a
    // half-inserted pool.
    sharedRegistry().mutex.lock();
}

extern "C" void
threadPoolAtforkParent()
{
    sharedRegistry().mutex.unlock();
}

extern "C" void
threadPoolAtforkChild()
{
    SharedRegistry &registry = sharedRegistry();
    registry.pools.clear(); // Abandon, do not destroy: see above.
    registry.mutex.unlock();
}

} // namespace

void
ThreadPool::installForkHandlers()
{
    static const int installed = [] {
        return pthread_atfork(threadPoolAtforkPrepare,
                              threadPoolAtforkParent,
                              threadPoolAtforkChild);
    }();
    checkInternal(installed == 0,
                  "pthread_atfork registration failed");
}

ThreadPool &
ThreadPool::shared(std::size_t threads)
{
    installForkHandlers();
    const std::size_t n = resolveThreads(threads);
    SharedRegistry &registry = sharedRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    ThreadPool *&slot = registry.pools[n];
    if (slot == nullptr)
        slot = new ThreadPool(n);
    return *slot;
}

} // namespace perple::common
