/**
 * @file
 * A fixed-size thread pool with a blocking, range-sharding
 * parallelFor, shared by the outcome-analysis engine.
 *
 * PerpLE's post-hoc counters examine frames that are completely
 * independent of each other, so the analysis phase parallelizes by
 * splitting an index range into contiguous chunks. The pool is created
 * once and reused across count() calls (no per-call thread spawn); the
 * calling thread executes the first chunk itself, so a pool of size 1
 * never touches a worker thread and degenerates to the serial path.
 */

#ifndef PERPLE_COMMON_THREAD_POOL_H
#define PERPLE_COMMON_THREAD_POOL_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace perple::common
{

/** A fixed-size pool executing sharded index-range jobs. */
class ThreadPool
{
  public:
    /**
     * @param threads Total parallelism including the calling thread
     *        (>= 1); the pool spawns threads - 1 workers.
     */
    explicit ThreadPool(std::size_t threads);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total parallelism of the pool (workers + calling thread). */
    std::size_t
    numThreads() const
    {
        return num_threads_;
    }

    /**
     * A chunk body: @p shard is the chunk's index (stable and unique
     * per call, < numThreads()), [@p begin, @p end) the contiguous
     * index sub-range assigned to it.
     */
    using RangeFn = std::function<void(
        std::size_t shard, std::int64_t begin, std::int64_t end)>;

    /**
     * Execute @p fn over [@p begin, @p end) split into at most
     * numThreads() contiguous chunks of at least @p grain indices
     * each; blocks until every chunk has finished. The calling thread
     * runs chunk 0. The first exception thrown by any chunk is
     * rethrown here (after all chunks have completed).
     *
     * An empty range (@p end <= @p begin) returns immediately without
     * invoking @p fn. A call made from inside a chunk body (nested
     * parallelFor, e.g. an analysis callback that itself shards) runs
     * the whole range serially as shard 0 on the calling thread:
     * dispatching nested chunks could deadlock the pool, with every
     * thread blocked waiting on a nested job nobody is left to run.
     */
    void parallelFor(std::int64_t begin, std::int64_t end,
                     std::int64_t grain, const RangeFn &fn);

    /**
     * Upper bound on the parallelism a thread-count knob can request.
     * A nonsense knob value (e.g. a negative environment variable
     * cast to std::size_t) must not make pool construction attempt
     * billions of threads.
     */
    static constexpr std::size_t kMaxThreads = 256;

    /** std::thread::hardware_concurrency(), at least 1. */
    static std::size_t hardwareThreads();

    /** Map a thread-count knob: 0 = hardwareThreads(), otherwise the
     *  requested count clamped to kMaxThreads. */
    static std::size_t resolveThreads(std::size_t requested);

    /**
     * The process-wide pool of exactly @p threads total parallelism
     * (0 = hardware concurrency). Pools are created lazily on first
     * use and reused for the lifetime of the process.
     *
     * Fork safety: worker threads do not survive fork(), so a child
     * inheriting this registry would block forever on its first
     * parallelFor. A pthread_atfork handler therefore abandons every
     * shared pool in the child (the objects are intentionally leaked —
     * destroying them would join threads that no longer exist) and the
     * child's first shared() call builds fresh pools. Supervised
     * children always leave via _exit, so the leak never outlives the
     * fork's purpose.
     */
    static ThreadPool &shared(std::size_t threads);

    /**
     * Idempotently install the fork handlers described at shared().
     * shared() installs them itself; call this before fork() from code
     * that forks without ever having touched a shared pool.
     */
    static void installForkHandlers();

  private:
    void workerLoop();

    std::size_t num_threads_;
    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::deque<std::function<void()>> tasks_;
    bool stopping_ = false;
};

} // namespace perple::common

#endif // PERPLE_COMMON_THREAD_POOL_H
