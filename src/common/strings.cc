#include "common/strings.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace perple
{

std::string
vformat(const char *fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed <= 0)
        return {};
    std::string out(static_cast<std::size_t>(needed), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    return out;
}

std::string
format(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string out = vformat(fmt, args);
    va_end(args);
    return out;
}

std::string
trim(const std::string &text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

std::vector<std::string>
split(const std::string &text, char delimiter, bool keep_empty)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t pos = text.find(delimiter, start);
        const std::size_t end = (pos == std::string::npos) ? text.size()
                                                           : pos;
        std::string field = trim(text.substr(start, end - start));
        if (keep_empty || !field.empty())
            fields.push_back(std::move(field));
        if (pos == std::string::npos)
            break;
        start = pos + 1;
    }
    return fields;
}

bool
startsWith(const std::string &text, const std::string &prefix)
{
    return text.size() >= prefix.size() &&
           text.compare(0, prefix.size(), prefix) == 0;
}

std::string
join(const std::vector<std::string> &parts, const std::string &separator)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i != 0)
            out += separator;
        out += parts[i];
    }
    return out;
}

std::string
toLower(const std::string &text)
{
    std::string out = text;
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

namespace
{

/** Shared from_chars full-string wrapper. */
template <typename T>
bool
parseFull(const std::string &text, T &out)
{
    if (text.empty())
        return false;
    const char *first = text.data();
    const char *last = text.data() + text.size();
    T value{};
    const auto result = std::from_chars(first, last, value);
    if (result.ec != std::errc() || result.ptr != last)
        return false;
    out = value;
    return true;
}

} // namespace

bool
parseFullInt64(const std::string &text, std::int64_t &out)
{
    return parseFull(text, out);
}

bool
parseFullUint64(const std::string &text, std::uint64_t &out)
{
    // from_chars on an unsigned type accepts a leading '-' by wrapping
    // on some implementations' general overload contracts; reject
    // signs explicitly so "-1" never parses as a huge unsigned value.
    if (!text.empty() && (text.front() == '-' || text.front() == '+'))
        return false;
    return parseFull(text, out);
}

bool
parseFullDouble(const std::string &text, double &out)
{
    return parseFull(text, out);
}

} // namespace perple

