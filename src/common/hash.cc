#include "common/hash.h"

#include "common/strings.h"

namespace perple::common
{

std::uint64_t
fnv1a64(std::uint64_t state, const void *bytes, std::size_t count)
{
    const auto *p = static_cast<const unsigned char *>(bytes);
    for (std::size_t i = 0; i < count; ++i) {
        state ^= p[i];
        state *= 0x100000001b3ULL;
    }
    return state;
}

std::string
hashToHex(std::uint64_t hash)
{
    return format("%016llx", static_cast<unsigned long long>(hash));
}

} // namespace perple::common
