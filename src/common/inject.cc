#include "common/inject.h"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <mutex>
#include <unistd.h>

namespace perple::common::inject
{

namespace
{

/** Armed thresholds (1-based call indices; 0 = disarmed) and the
 *  monotonically consumed call slots. */
struct State
{
    std::atomic<long long> shortAt{0};
    std::atomic<long long> enospcAt{0};
    std::atomic<long long> fsyncAt{0};
    std::atomic<long long> writeCalls{0};
    std::atomic<long long> fsyncCalls{0};
    std::atomic<bool> anyArmed{false};
};

State gState;
std::once_flag gInitOnce;

long long
envThreshold(const char *name)
{
    const char *value = std::getenv(name);
    if (value == nullptr || *value == '\0')
        return 0;
    const long long threshold = std::strtoll(value, nullptr, 10);
    return threshold > 0 ? threshold : 0;
}

void
loadEnv()
{
    const long long shortAt = envThreshold("PERPLE_INJECT_SHORT_WRITE");
    const long long enospcAt = envThreshold("PERPLE_INJECT_ENOSPC");
    const long long fsyncAt = envThreshold("PERPLE_INJECT_FSYNC_FAIL");
    gState.shortAt.store(shortAt, std::memory_order_relaxed);
    gState.enospcAt.store(enospcAt, std::memory_order_relaxed);
    gState.fsyncAt.store(fsyncAt, std::memory_order_relaxed);
    gState.writeCalls.store(0, std::memory_order_relaxed);
    gState.fsyncCalls.store(0, std::memory_order_relaxed);
    gState.anyArmed.store(shortAt > 0 || enospcAt > 0 || fsyncAt > 0,
                          std::memory_order_release);
}

void
ensureInit()
{
    std::call_once(gInitOnce, loadEnv);
}

} // namespace

bool
armed()
{
    ensureInit();
    return gState.anyArmed.load(std::memory_order_acquire);
}

WriteDecision
decideWrite(std::size_t requested)
{
    if (!armed())
        return {};
    const long long call =
        gState.writeCalls.fetch_add(1, std::memory_order_relaxed) + 1;
    const long long enospcAt =
        gState.enospcAt.load(std::memory_order_relaxed);
    if (enospcAt > 0 && call >= enospcAt)
        return {Fault::Enospc, 0};
    const long long shortAt =
        gState.shortAt.load(std::memory_order_relaxed);
    if (shortAt > 0) {
        if (call == shortAt)
            return {Fault::Short, requested / 2};
        if (call > shortAt)
            return {Fault::Enospc, 0};
    }
    return {};
}

bool
decideFsync()
{
    if (!armed())
        return false;
    const long long call =
        gState.fsyncCalls.fetch_add(1, std::memory_order_relaxed) + 1;
    const long long fsyncAt =
        gState.fsyncAt.load(std::memory_order_relaxed);
    return fsyncAt > 0 && call >= fsyncAt;
}

ssize_t
write(int fd, const void *data, std::size_t count)
{
    const WriteDecision decision = decideWrite(count);
    switch (decision.fault) {
    case Fault::None: return ::write(fd, data, count);
    case Fault::Short: {
        // Persist the torn prefix for real so the on-disk state is
        // exactly what a crash mid-append leaves behind, then report
        // the partial count like a genuine short write.
        std::size_t persisted = 0;
        const char *bytes = static_cast<const char *>(data);
        while (persisted < decision.allowed) {
            const ssize_t wrote = ::write(fd, bytes + persisted,
                                          decision.allowed - persisted);
            if (wrote <= 0)
                break;
            persisted += static_cast<std::size_t>(wrote);
        }
        return static_cast<ssize_t>(persisted);
    }
    case Fault::Enospc:
        errno = ENOSPC;
        return -1;
    }
    errno = ENOSPC;
    return -1;
}

int
fsync(int fd)
{
    if (decideFsync()) {
        errno = EIO;
        return -1;
    }
    return ::fsync(fd);
}

void
reset()
{
    ensureInit();
    loadEnv();
}

} // namespace perple::common::inject
