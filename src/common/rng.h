/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component of PerpLE (simulator schedulers, workload
 * shufflers, property-test sweeps) draws from an explicitly seeded Rng so
 * that each experiment is exactly reproducible from its recorded seed.
 * The generator is xoshiro256**, which is small, fast and passes the usual
 * statistical batteries; quality matters here because scheduler decisions
 * directly shape the interleavings a run can explore.
 */

#ifndef PERPLE_COMMON_RNG_H
#define PERPLE_COMMON_RNG_H

#include <cstdint>
#include <utility>

namespace perple
{

/** Seedable xoshiro256** generator with convenience distributions. */
class Rng
{
  public:
    /**
     * Construct from a 64-bit seed.
     *
     * The four words of internal state are derived from the seed with a
     * splitmix64 expansion, so nearby seeds yield unrelated streams.
     *
     * @param seed Any value, including zero.
     */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit output. */
    std::uint64_t next();

    /**
     * Uniform integer in [0, bound).
     *
     * Uses rejection sampling (Lemire-style) to avoid modulo bias.
     *
     * @param bound Exclusive upper bound; must be nonzero.
     * @return A value in [0, bound).
     */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    std::int64_t nextInRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial: true with probability @p p (clamped to [0,1]). */
    bool nextBool(double p = 0.5);

    /** Fork a child generator whose stream is independent of the parent. */
    Rng split();

    /**
     * Fisher-Yates shuffle of a random-access container.
     *
     * @param container Container with size() and operator[].
     */
    template <typename Container>
    void
    shuffle(Container &container)
    {
        const std::uint64_t n = container.size();
        for (std::uint64_t i = n; i > 1; --i) {
            const std::uint64_t j = nextBelow(i);
            using std::swap;
            swap(container[i - 1], container[j]);
        }
    }

  private:
    std::uint64_t state_[4];
};

} // namespace perple

#endif // PERPLE_COMMON_RNG_H
