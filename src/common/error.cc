#include "common/error.h"

namespace perple
{

void
fatal(const std::string &message)
{
    throw UserError(message);
}

void
panic(const std::string &message)
{
    throw InternalError("internal error: " + message);
}

} // namespace perple
