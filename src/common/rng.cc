#include "common/rng.h"

#include "common/error.h"

namespace perple
{

namespace
{

/** splitmix64 step, used only for state expansion from a user seed. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : state_)
        word = splitmix64(sm);
    // xoshiro requires a nonzero state; splitmix64 cannot produce four
    // zero outputs in a row, but guard anyway.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0)
        state_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    checkInternal(bound != 0, "Rng::nextBelow bound must be nonzero");
    // Lemire's multiply-shift method with rejection of the biased zone.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
        const std::uint64_t threshold = (0 - bound) % bound;
        while (lo < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Rng::nextInRange(std::int64_t lo, std::int64_t hi)
{
    checkInternal(lo <= hi, "Rng::nextInRange requires lo <= hi");
    const auto span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
    const std::uint64_t draw = (span == 0) ? next() : nextBelow(span);
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + draw);
}

double
Rng::nextDouble()
{
    // 53 high bits scaled into [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xa5a5a5a5a5a5a5a5ULL);
}

} // namespace perple
