/**
 * @file
 * Console status messages (inform / warn), gem5-style.
 *
 * These never stop execution; they only keep the user informed. Verbosity
 * is controlled globally so tests can silence the library.
 */

#ifndef PERPLE_COMMON_LOGGING_H
#define PERPLE_COMMON_LOGGING_H

#include <string>

namespace perple
{

/** Log severities, lowest to highest. */
enum class LogLevel
{
    Debug,
    Info,
    Warn,
    Silent,
};

/** Set the minimum severity that is printed (default: Info). */
void setLogLevel(LogLevel level);

/** Current minimum printed severity. */
LogLevel logLevel();

/** Print a debugging message to stderr when verbosity allows. */
void debug(const std::string &message);

/** Print an informational status message to stderr. */
void inform(const std::string &message);

/** Print a warning to stderr. */
void warn(const std::string &message);

} // namespace perple

#endif // PERPLE_COMMON_LOGGING_H
