#include "common/cli.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <limits>

#include "common/error.h"
#include "common/strings.h"

namespace perple::common
{

namespace
{

[[noreturn]] void
badValue(const char *flag, const std::string &text, const char *why)
{
    fatal(
        format("%s: invalid value '%s' (%s)", flag, text.c_str(), why));
}

} // namespace

std::int64_t
parseIntArg(const char *flag, const std::string &text, std::int64_t min,
            std::int64_t max)
{
    if (text.empty())
        badValue(flag, text, "expected an integer");
    errno = 0;
    char *end = nullptr;
    const long long value = std::strtoll(text.c_str(), &end, 10);
    if (end != text.c_str() + text.size())
        badValue(flag, text, "expected an integer");
    if (errno == ERANGE || value < min || value > max)
        badValue(flag, text,
                 format("expected an integer in [%lld, %lld]",
                        static_cast<long long>(min),
                        static_cast<long long>(max))
                     .c_str());
    return value;
}

std::uint64_t
parseSeedArg(const char *flag, const std::string &text)
{
    if (text.empty() || text[0] == '-')
        badValue(flag, text, "expected an unsigned integer");
    errno = 0;
    char *end = nullptr;
    const unsigned long long value =
        std::strtoull(text.c_str(), &end, 10);
    if (end != text.c_str() + text.size())
        badValue(flag, text, "expected an unsigned integer");
    if (errno == ERANGE)
        badValue(flag, text, "value does not fit in 64 bits");
    return value;
}

double
parseSecondsArg(const char *flag, const std::string &text, double min)
{
    if (text.empty())
        badValue(flag, text, "expected a number of seconds");
    errno = 0;
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size())
        badValue(flag, text, "expected a number of seconds");
    if (errno == ERANGE || !(value >= min))
        badValue(flag, text,
                 format("expected a number >= %g", min).c_str());
    return value;
}

std::uint64_t
parseBytesArg(const char *flag, const std::string &text)
{
    std::string digits = text;
    std::uint64_t unit = 1;
    if (!digits.empty()) {
        switch (std::tolower(static_cast<unsigned char>(
            digits.back()))) {
          case 'k': unit = 1024ULL; break;
          case 'm': unit = 1024ULL * 1024; break;
          case 'g': unit = 1024ULL * 1024 * 1024; break;
          default: unit = 0; break;
        }
        if (unit != 0)
            digits.pop_back();
        else
            unit = 1;
    }
    const std::int64_t value =
        parseIntArg(flag, digits, 0,
                    static_cast<std::int64_t>(
                        std::numeric_limits<std::int64_t>::max()));
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(value) * unit;
    if (value != 0 && bytes / unit != static_cast<std::uint64_t>(value))
        badValue(flag, text, "byte count overflows 64 bits");
    return bytes;
}

void
ensureWritableDir(const char *flag, const std::string &path)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    if (fs::exists(path, ec)) {
        if (!fs::is_directory(path, ec))
            fatal(format("%s: %s exists and is not a directory",
                             flag, path.c_str()));
        return;
    }
    if (!fs::create_directories(path, ec) || ec)
        fatal(format("%s: cannot create directory %s (%s)", flag,
                         path.c_str(), ec.message().c_str()));
}

void
ensureWritableParent(const char *flag, const std::string &path)
{
    namespace fs = std::filesystem;
    const fs::path parent = fs::path(path).parent_path();
    if (parent.empty())
        return; // Relative file in the working directory.
    std::error_code ec;
    if (!fs::exists(parent, ec))
        fatal(format("%s: parent directory %s does not exist",
                         flag, parent.string().c_str()));
    if (!fs::is_directory(parent, ec))
        fatal(format("%s: parent %s is not a directory", flag,
                         parent.string().c_str()));
}

void
parseSocketPathArg(const char *flag, const std::string &path)
{
    // sizeof(sockaddr_un::sun_path) is 108 on Linux; the kernel needs
    // the terminating NUL, so 107 usable bytes.
    constexpr std::size_t kMaxSunPath = 107;
    if (path.empty())
        fatal(format("%s: socket path must not be empty", flag));
    if (path.size() > kMaxSunPath)
        fatal(format("%s: socket path is %zu bytes; Unix-domain "
                     "socket paths are limited to %zu",
                     flag, path.size(), kMaxSunPath));
    ensureWritableParent(flag, path);
}

void
parseExistingSocketPath(const char *flag, const std::string &path)
{
    parseSocketPathArg(flag, path);
    namespace fs = std::filesystem;
    std::error_code ec;
    const fs::file_status status = fs::status(path, ec);
    if (ec || !fs::exists(status))
        fatal(format("%s: no socket at %s (is the daemon running?)",
                     flag, path.c_str()));
    if (status.type() != fs::file_type::socket)
        fatal(format("%s: %s exists but is not a socket", flag,
                     path.c_str()));
}

} // namespace perple::common
