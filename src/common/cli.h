/**
 * @file
 * Strict command-line argument parsing shared by the tools.
 *
 * atoi-style parsing silently turns "--jobs banana" into 0 and
 * "--campaigns -5" into a config error three layers down; these
 * helpers reject malformed or out-of-range values at the flag with a
 * one-line UserError naming the flag, so every binary fails fast with
 * a clear message and a nonzero exit instead of misbehaving later.
 */

#ifndef PERPLE_COMMON_CLI_H
#define PERPLE_COMMON_CLI_H

#include <cstdint>
#include <string>

namespace perple::common
{

/**
 * Parse @p text as a decimal integer in [@p min, @p max].
 *
 * @param flag The flag name for error messages (e.g. "--campaigns").
 * @throws UserError on empty/garbled/partial input or range overflow.
 */
std::int64_t parseIntArg(const char *flag, const std::string &text,
                         std::int64_t min, std::int64_t max);

/** Parse an unsigned 64-bit seed (full-range, strict). */
std::uint64_t parseSeedArg(const char *flag, const std::string &text);

/**
 * Parse a non-negative decimal duration/limit in seconds (fractions
 * allowed); values below @p min are rejected.
 */
double parseSecondsArg(const char *flag, const std::string &text,
                       double min = 0);

/**
 * Parse a byte count with an optional K/M/G suffix (powers of 1024,
 * case-insensitive), e.g. "512M"; 0 is allowed (meaning "no limit").
 */
std::uint64_t parseBytesArg(const char *flag, const std::string &text);

/**
 * Ensure @p path can serve as an output directory: creates it (and
 * parents) when missing, and rejects paths that exist as files or
 * whose creation fails.
 *
 * @throws UserError with the flag name on failure.
 */
void ensureWritableDir(const char *flag, const std::string &path);

/**
 * Ensure the parent directory of file path @p path exists and is a
 * directory, so the open that comes later fails only for interesting
 * reasons.
 */
void ensureWritableParent(const char *flag, const std::string &path);

/**
 * Validate @p path as a Unix-domain socket path a server could bind:
 * non-empty, short enough for sockaddr_un::sun_path (107 bytes + NUL
 * on Linux), and with an existing parent directory. Rejecting at the
 * flag beats bind() truncating the path silently.
 */
void parseSocketPathArg(const char *flag, const std::string &path);

/**
 * Validate @p path as a Unix-domain socket a client could connect to:
 * everything parseSocketPathArg checks, plus the path must exist and
 * be a socket. Catches "daemon not running" and "that's a regular
 * file" with a clear message instead of a bare ECONNREFUSED.
 */
void parseExistingSocketPath(const char *flag, const std::string &path);

} // namespace perple::common

#endif // PERPLE_COMMON_CLI_H
