/**
 * @file
 * Wall-clock timing helpers for the harnesses and benches.
 *
 * Every experiment in the paper reports a runtime that is split into
 * phases (synchronization, test execution, outcome counting), so the
 * benches here use PhaseTimer to attribute time the same way.
 */

#ifndef PERPLE_COMMON_TIMING_H
#define PERPLE_COMMON_TIMING_H

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace perple
{

/** Monotonic stopwatch measuring elapsed nanoseconds. */
class WallTimer
{
  public:
    /** Construct and start immediately. */
    WallTimer() { restart(); }

    /** Reset the origin to now. */
    void restart() { start_ = Clock::now(); }

    /** Nanoseconds since construction or the last restart(). */
    std::int64_t
    elapsedNs() const
    {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   Clock::now() - start_)
            .count();
    }

    /** Seconds since construction or the last restart(). */
    double
    elapsedSeconds() const
    {
        return static_cast<double>(elapsedNs()) * 1e-9;
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/**
 * Accumulates named phase durations.
 *
 * Usage: call start("sync"), do work, call stop(). Phases may be entered
 * repeatedly; durations accumulate.
 */
class PhaseTimer
{
  public:
    /** Begin attributing time to @p phase. Implicitly ends any open one. */
    void start(const std::string &phase);

    /** Stop the currently open phase, if any. */
    void stop();

    /**
     * Credit @p ns nanoseconds to @p phase directly, without the
     * start()/stop() stopwatch — how concurrent pipelines attribute
     * time measured on another thread (e.g. the streaming harness's
     * execution thread) to the standard phase names.
     */
    void addNs(const std::string &phase, std::int64_t ns);

    /** Accumulated nanoseconds attributed to @p phase (0 if unknown). */
    std::int64_t phaseNs(const std::string &phase) const;

    /** Accumulated seconds attributed to @p phase. */
    double
    phaseSeconds(const std::string &phase) const
    {
        return static_cast<double>(phaseNs(phase)) * 1e-9;
    }

    /** Sum of all phase durations in nanoseconds. */
    std::int64_t totalNs() const;

    /** Sum of all phase durations in seconds. */
    double
    totalSeconds() const
    {
        return static_cast<double>(totalNs()) * 1e-9;
    }

    /** All accumulated phases keyed by name. */
    const std::map<std::string, std::int64_t> &phases() const
    {
        return phases_;
    }

  private:
    std::map<std::string, std::int64_t> phases_;
    std::string current_;
    WallTimer timer_;
    bool running_ = false;
};

/** Render a nanosecond duration as a human-readable string. */
std::string formatDuration(std::int64_t ns);

} // namespace perple

#endif // PERPLE_COMMON_TIMING_H
