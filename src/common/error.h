/**
 * @file
 * Error handling primitives shared by every PerpLE module.
 *
 * Two failure classes are distinguished, following the usual
 * simulator-codebase convention:
 *
 *  - UserError: the input (a litmus test, an outcome specification, a
 *    configuration value) is invalid. These are raised with fatal() and
 *    are expected to be caught and reported by tools.
 *  - InternalError: an invariant of PerpLE itself was violated. These are
 *    raised with panic() and indicate a bug in this library.
 */

#ifndef PERPLE_COMMON_ERROR_H
#define PERPLE_COMMON_ERROR_H

#include <stdexcept>
#include <string>

namespace perple
{

/** Base class for all exceptions thrown by PerpLE. */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {}
};

/** The caller supplied invalid input; the library itself is fine. */
class UserError : public Error
{
  public:
    explicit UserError(const std::string &what_arg) : Error(what_arg) {}
};

/** A PerpLE invariant was violated; this indicates a library bug. */
class InternalError : public Error
{
  public:
    explicit InternalError(const std::string &what_arg) : Error(what_arg) {}
};

/**
 * Raise a UserError for a condition caused by bad input.
 *
 * @param message Human-readable description of what the caller got wrong.
 */
[[noreturn]] void fatal(const std::string &message);

/**
 * Raise an InternalError for a condition that should be impossible.
 *
 * @param message Human-readable description of the violated invariant.
 */
[[noreturn]] void panic(const std::string &message);

/** Raise a UserError with @p message unless @p condition holds. */
inline void
checkUser(bool condition, const std::string &message)
{
    if (!condition)
        fatal(message);
}

/** Raise an InternalError with @p message unless @p condition holds. */
inline void
checkInternal(bool condition, const std::string &message)
{
    if (!condition)
        panic(message);
}

} // namespace perple

#endif // PERPLE_COMMON_ERROR_H
