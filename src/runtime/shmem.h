/**
 * @file
 * Cache-line padded shared-memory arrays for the native backend.
 *
 * Each shared location occupies its own cache line so that test threads
 * only communicate through the locations the litmus test names, not
 * through false sharing.
 */

#ifndef PERPLE_RUNTIME_SHMEM_H
#define PERPLE_RUNTIME_SHMEM_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace perple::runtime
{

/** One shared location on its own cache line. */
struct alignas(64) PaddedCell
{
    volatile std::int64_t value = 0;
    char padding[64 - sizeof(std::int64_t)] = {};
};

static_assert(sizeof(PaddedCell) == 64, "PaddedCell must fill one line");

/**
 * A 2-D array of padded cells: `instances` rows of `locations` cells.
 *
 * Instance 0 is the only row in perpetual (shared) layouts; litmus7
 * layouts use one row per in-flight iteration.
 */
class SharedMemory
{
  public:
    /**
     * Allocate and zero the array.
     *
     * @param instances Number of location sets.
     * @param locations Locations per set.
     */
    SharedMemory(std::int64_t instances, int locations)
        : locations_(locations),
          cells_(static_cast<std::size_t>(instances) *
                 static_cast<std::size_t>(locations))
    {}

    /** Cell for @p loc of @p instance. */
    volatile std::int64_t *
    cell(std::int64_t instance, int loc)
    {
        return &cells_[static_cast<std::size_t>(instance) *
                           static_cast<std::size_t>(locations_) +
                       static_cast<std::size_t>(loc)]
                    .value;
    }

    /** Zero every cell (only call while no test thread is running). */
    void
    reset()
    {
        for (auto &cell_ref : cells_)
            cell_ref.value = 0;
    }

    std::int64_t
    instances() const
    {
        return static_cast<std::int64_t>(cells_.size()) / locations_;
    }

    int locations() const { return locations_; }

  private:
    int locations_;
    std::vector<PaddedCell> cells_;
};

} // namespace perple::runtime

#endif // PERPLE_RUNTIME_SHMEM_H
