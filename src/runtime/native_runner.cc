#include "runtime/native_runner.h"

#include <thread>

#include "common/error.h"
#include "common/timing.h"
#include "runtime/asmops.h"
#include "runtime/shmem.h"

namespace perple::runtime
{

sim::RunResult
runNative(const std::vector<sim::SimProgram> &programs, int num_locations,
          std::int64_t iterations, const NativeConfig &config)
{
    checkUser(!programs.empty(), "runNative needs at least one thread");
    checkUser(iterations > 0, "runNative needs a positive iteration "
                              "count");

    const int num_threads = static_cast<int>(programs.size());
    const std::int64_t instances =
        config.perIterationInstances
            ? std::min<std::int64_t>(config.chunkSize, iterations)
            : 1;

    SharedMemory memory(instances, num_locations);

    sim::RunResult result;
    result.bufs.resize(programs.size());
    if (config.externalBufs == nullptr)
        for (std::size_t t = 0; t < programs.size(); ++t)
            result.bufs[t].resize(static_cast<std::size_t>(
                programs[t].loadsPerIteration * iterations));

    auto iteration_barrier =
        makeBarrier(config.mode, num_threads, config.timebaseInterval,
                    config.barrierFailsafeSeconds);
    // Chunk boundaries and launch always synchronize via a pthread
    // barrier, independent of the per-iteration mode.
    auto chunk_barrier = makeBarrier(SyncMode::Pthread, num_threads);

    const auto worker = [&](int thread_id) {
        const auto ut = static_cast<std::size_t>(thread_id);
        const sim::SimProgram &program = programs[ut];
        const auto r_t =
            static_cast<std::int64_t>(program.loadsPerIteration);
        auto *buf = config.externalBufs != nullptr
                        ? config.externalBufs[ut]
                        : result.bufs[ut].data();
        volatile std::int64_t *progress =
            config.progressCells != nullptr ? config.progressCells[ut]
                                            : nullptr;

        chunk_barrier->wait(thread_id); // Launch synchronization.

        for (std::int64_t n = 0; n < iterations; ++n) {
            if (config.iterationCeiling != nullptr) {
                // Streaming backpressure: stay below the analysis
                // ceiling. Spin briefly, then yield — the ceiling
                // only moves when an epoch finishes analyzing.
                int spins = 0;
                while (__atomic_load_n(config.iterationCeiling,
                                       __ATOMIC_ACQUIRE) <= n) {
                    if (++spins < 64)
                        cpuRelax();
                    else
                        std::this_thread::yield();
                }
            }
            if (config.perIterationInstances && n > 0 &&
                n % instances == 0) {
                // Instances wrap: rendezvous, zero, rendezvous.
                chunk_barrier->wait(thread_id);
                if (thread_id == 0)
                    memory.reset();
                chunk_barrier->wait(thread_id);
            }
            iteration_barrier->wait(thread_id);

            const std::int64_t instance =
                config.perIterationInstances ? n % instances : 0;
            for (const sim::SimOp &op : program.ops) {
                switch (op.kind) {
                  case litmus::OpKind::Store:
                    asmStore(memory.cell(instance, op.loc),
                             op.value.eval(n));
                    break;
                  case litmus::OpKind::Load:
                    buf[r_t * n + op.slot] =
                        asmLoad(memory.cell(instance, op.loc));
                    break;
                  case litmus::OpKind::Fence:
                    asmFence();
                    break;
                  case litmus::OpKind::Rmw:
                    buf[r_t * n + op.slot] =
                        asmXchg(memory.cell(instance, op.loc),
                                op.value.eval(n));
                    break;
                }
            }
            // Release publication: a reader acquiring the cell owns
            // the whole buf prefix below it (see NativeConfig).
            if (progress != nullptr)
                __atomic_store_n(progress, n + 1, __ATOMIC_RELEASE);
        }
    };

    WallTimer timer;
    {
        std::vector<std::thread> threads;
        threads.reserve(programs.size());
        for (int t = 0; t < num_threads; ++t)
            threads.emplace_back(worker, t);
        for (auto &thread : threads)
            thread.join();
    }

    result.memory.resize(static_cast<std::size_t>(instances) *
                         static_cast<std::size_t>(num_locations));
    for (std::int64_t k = 0; k < instances; ++k)
        for (int loc = 0; loc < num_locations; ++loc)
            result.memory[static_cast<std::size_t>(
                k * num_locations + loc)] =
                asmLoad(memory.cell(k, loc));

    std::uint64_t ops_per_iteration = 0;
    for (const auto &program : programs)
        ops_per_iteration += program.ops.size();
    result.stats.instructions =
        ops_per_iteration * static_cast<std::uint64_t>(iterations);
    result.stats.finalTick =
        static_cast<std::uint64_t>(timer.elapsedNs());
    result.stats.barrierBailouts =
        iteration_barrier->bailouts() + chunk_barrier->bailouts();
    return result;
}

} // namespace perple::runtime
