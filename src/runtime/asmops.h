/**
 * @file
 * Low-level memory operations for the native backend.
 *
 * On x86-64 these compile to plain MOV / MFENCE / RDTSC, matching the
 * instruction sequences the PerpLE Converter emits in its assembly
 * output (Section V-A). On other ISAs they fall back to relaxed C++
 * atomics plus a seq_cst fence, which preserves correctness but not the
 * exact instruction shapes.
 */

#ifndef PERPLE_RUNTIME_ASMOPS_H
#define PERPLE_RUNTIME_ASMOPS_H

#include <atomic>
#include <cstdint>

namespace perple::runtime
{

#if defined(__x86_64__)

/** Plain 64-bit store (x86 MOV to memory). */
inline void
asmStore(volatile std::int64_t *addr, std::int64_t value)
{
    asm volatile("movq %1, %0" : "=m"(*addr) : "r"(value) : "memory");
}

/** Plain 64-bit load (x86 MOV from memory). */
inline std::int64_t
asmLoad(const volatile std::int64_t *addr)
{
    std::int64_t value;
    asm volatile("movq %1, %0" : "=r"(value) : "m"(*addr) : "memory");
    return value;
}

/** Full memory fence (x86 MFENCE). */
inline void
asmFence()
{
    asm volatile("mfence" ::: "memory");
}

/**
 * Atomic exchange (x86 XCHG with memory, implicitly locked): stores
 * @p value and returns the previous content.
 */
inline std::int64_t
asmXchg(volatile std::int64_t *addr, std::int64_t value)
{
    std::int64_t old = value;
    asm volatile("xchgq %0, %1"
                 : "+r"(old), "+m"(*addr)
                 :
                 : "memory");
    return old;
}

/** Timestamp counter (x86 RDTSC); the litmus7 timebase. */
inline std::uint64_t
readTimebase()
{
    std::uint32_t lo, hi;
    asm volatile("rdtsc" : "=a"(lo), "=d"(hi));
    return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

/** Spin-wait hint (x86 PAUSE). */
inline void
cpuRelax()
{
    asm volatile("pause" ::: "memory");
}

#else // !__x86_64__

inline void
asmStore(volatile std::int64_t *addr, std::int64_t value)
{
    reinterpret_cast<std::atomic<std::int64_t> *>(
        const_cast<std::int64_t *>(addr))
        ->store(value, std::memory_order_relaxed);
}

inline std::int64_t
asmLoad(const volatile std::int64_t *addr)
{
    return reinterpret_cast<const std::atomic<std::int64_t> *>(
               const_cast<const std::int64_t *>(addr))
        ->load(std::memory_order_relaxed);
}

inline void
asmFence()
{
    std::atomic_thread_fence(std::memory_order_seq_cst);
}

inline std::int64_t
asmXchg(volatile std::int64_t *addr, std::int64_t value)
{
    return reinterpret_cast<std::atomic<std::int64_t> *>(
               const_cast<std::int64_t *>(addr))
        ->exchange(value, std::memory_order_seq_cst);
}

inline std::uint64_t
readTimebase()
{
    return static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
}

inline void
cpuRelax()
{
}

#endif // __x86_64__

} // namespace perple::runtime

#endif // PERPLE_RUNTIME_ASMOPS_H
