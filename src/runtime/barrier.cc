#include "runtime/barrier.h"

#include <thread>
#include <vector>

#include "common/error.h"
#include "common/timing.h"
#include "runtime/asmops.h"

namespace perple::runtime
{

std::string
syncModeName(SyncMode mode)
{
    switch (mode) {
      case SyncMode::User: return "user";
      case SyncMode::UserFence: return "userfence";
      case SyncMode::Pthread: return "pthread";
      case SyncMode::Timebase: return "timebase";
      case SyncMode::None: return "none";
    }
    return "?";
}

SyncMode
syncModeFromName(const std::string &name)
{
    for (const SyncMode mode : allSyncModes())
        if (syncModeName(mode) == name)
            return mode;
    fatal("unknown synchronization mode '" + name + "'");
}

const std::vector<SyncMode> &
allSyncModes()
{
    static const std::vector<SyncMode> modes = {
        SyncMode::User, SyncMode::UserFence, SyncMode::Pthread,
        SyncMode::Timebase, SyncMode::None};
    return modes;
}

namespace
{

/**
 * Spin with PAUSE, yielding to the scheduler periodically so polling
 * barriers stay live even when test threads outnumber cores (litmus7
 * relies on having a core per thread; we do not).
 */
class SpinWaiter
{
  public:
    void
    spin()
    {
        cpuRelax();
        if (++spins_ % 256 == 0)
            std::this_thread::yield();
    }

  private:
    unsigned spins_ = 0;
};

/** Sense-reversing polling barrier (litmus7 `user`). */
class SpinBarrier : public Barrier
{
  public:
    SpinBarrier(int num_threads, bool fence_on_release,
                double failsafe_seconds)
        : numThreads_(num_threads), fenceOnRelease_(fence_on_release),
          failsafeSeconds_(failsafe_seconds)
    {}

    void
    wait(int) override
    {
        if (poisoned_.load(std::memory_order_acquire))
            return; // A peer is gone; degrade to free-running.
        const bool my_sense = !sense_.load(std::memory_order_relaxed);
        if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            numThreads_) {
            arrived_.store(0, std::memory_order_relaxed);
            if (fenceOnRelease_)
                asmFence();
            sense_.store(my_sense, std::memory_order_release);
        } else {
            SpinWaiter waiter;
            WallTimer timer;
            std::uint64_t spins = 0;
            while (sense_.load(std::memory_order_acquire) !=
                   my_sense) {
                if (poisoned_.load(std::memory_order_acquire))
                    return;
                waiter.spin();
                // The clock is off the hot path: one read per 8192
                // spins keeps the failsafe below the noise floor.
                if (failsafeSeconds_ > 0 &&
                    (++spins & 8191u) == 0 &&
                    timer.elapsedSeconds() > failsafeSeconds_) {
                    bailouts_.fetch_add(1, std::memory_order_relaxed);
                    poisoned_.store(true, std::memory_order_release);
                    return;
                }
            }
        }
        if (fenceOnRelease_)
            asmFence();
    }

    std::uint64_t
    bailouts() const override
    {
        return bailouts_.load(std::memory_order_relaxed);
    }

    bool
    poisoned() const
    {
        return poisoned_.load(std::memory_order_acquire);
    }

  private:
    const int numThreads_;
    const bool fenceOnRelease_;
    const double failsafeSeconds_;
    std::atomic<int> arrived_{0};
    std::atomic<bool> sense_{false};
    std::atomic<bool> poisoned_{false};
    std::atomic<std::uint64_t> bailouts_{0};
};

/** pthread_barrier_t wrapper (litmus7 `pthread`). */
class PthreadBarrier : public Barrier
{
  public:
    explicit PthreadBarrier(int num_threads)
    {
        checkInternal(pthread_barrier_init(
                          &barrier_, nullptr,
                          static_cast<unsigned>(num_threads)) == 0,
                      "pthread_barrier_init failed");
    }

    ~PthreadBarrier() override { pthread_barrier_destroy(&barrier_); }

    PthreadBarrier(const PthreadBarrier &) = delete;
    PthreadBarrier &operator=(const PthreadBarrier &) = delete;

    void
    wait(int) override
    {
        pthread_barrier_wait(&barrier_);
    }

  private:
    pthread_barrier_t barrier_;
};

/**
 * Timebase barrier (litmus7 `timebase`): spin rendezvous, then every
 * thread waits until the next multiple of the timebase interval, so all
 * threads resume within one counter read of each other.
 */
class TimebaseBarrier : public Barrier
{
  public:
    TimebaseBarrier(int num_threads, std::uint64_t interval,
                    double failsafe_seconds)
        : spin_(num_threads, /*fence_on_release=*/false,
                failsafe_seconds),
          interval_(interval)
    {}

    void
    wait(int thread) override
    {
        spin_.wait(thread);
        if (spin_.poisoned())
            return; // No peers left to align with.
        const std::uint64_t now = readTimebase();
        const std::uint64_t deadline =
            (now / interval_ + 1) * interval_;
        SpinWaiter waiter;
        while (readTimebase() < deadline)
            waiter.spin();
    }

    std::uint64_t
    bailouts() const override
    {
        return spin_.bailouts();
    }

  private:
    SpinBarrier spin_;
    const std::uint64_t interval_;
};

/** SyncMode::None: no synchronization. */
class NullBarrier : public Barrier
{
  public:
    void wait(int) override {}
};

} // namespace

std::unique_ptr<Barrier>
makeBarrier(SyncMode mode, int num_threads,
            std::uint64_t timebase_interval, double failsafe_seconds)
{
    checkUser(num_threads > 0, "barrier needs at least one thread");
    switch (mode) {
      case SyncMode::User:
        return std::make_unique<SpinBarrier>(num_threads, false,
                                             failsafe_seconds);
      case SyncMode::UserFence:
        return std::make_unique<SpinBarrier>(num_threads, true,
                                             failsafe_seconds);
      case SyncMode::Pthread:
        // Kernel-sleeping waits cannot poison themselves; a stuck
        // pthread barrier is the process-level watchdog's job
        // (supervise::runSupervised).
        return std::make_unique<PthreadBarrier>(num_threads);
      case SyncMode::Timebase:
        return std::make_unique<TimebaseBarrier>(num_threads,
                                                 timebase_interval,
                                                 failsafe_seconds);
      case SyncMode::None:
        return std::make_unique<NullBarrier>();
    }
    panic("unreachable sync mode");
}

} // namespace perple::runtime
