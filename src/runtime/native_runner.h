/**
 * @file
 * Native (real-thread) execution of litmus and perpetual programs.
 *
 * This is the backend the paper actually ran on: one std::thread per
 * test thread issuing plain MOV loads/stores (inline asm) against
 * cache-line padded shared memory, synchronized by one of the litmus7
 * barrier modes or free-running for perpetual tests. It produces the
 * same RunResult artifact as the simulator, so every analysis (outcome
 * counting, skew, tallying) works on either backend unchanged.
 *
 * On a single-core host the threads time-slice and hardware store-buffer
 * reorderings essentially never surface; the simulator backend is the
 * default for experiments there (see DESIGN.md). This backend exists so
 * the same binaries reproduce the paper on a real multicore.
 */

#ifndef PERPLE_RUNTIME_NATIVE_RUNNER_H
#define PERPLE_RUNTIME_NATIVE_RUNNER_H

#include <cstdint>

#include "runtime/barrier.h"
#include "sim/program.h"
#include "sim/result.h"

namespace perple::runtime
{

/** Configuration of a native run. */
struct NativeConfig
{
    /** Per-iteration synchronization mode (None for perpetual runs). */
    SyncMode mode = SyncMode::None;

    /**
     * Location layout: true allocates one location instance per
     * in-flight iteration (litmus7 layout, reused modulo chunkSize and
     * zeroed between chunks); false uses a single shared instance for
     * the whole run (perpetual layout).
     */
    bool perIterationInstances = true;

    /** In-flight instances in the litmus7 layout. */
    std::int64_t chunkSize = 1024;

    /** Timebase barrier interval (ticks). */
    std::uint64_t timebaseInterval = 2048;

    /**
     * Polling-barrier failsafe cap (seconds; see runtime/barrier.h):
     * a waiter stuck past the cap poisons the barrier and the run
     * degrades to free-running instead of livelocking. Bailouts are
     * reported in RunStats::barrierBailouts. 0 disables the failsafe.
     */
    double barrierFailsafeSeconds = 10.0;

    /**
     * When non-null, thread t writes its buf into externalBufs[t]
     * (caller-provided storage of loadsPerIteration × iterations
     * values, e.g. a supervise::RunRegion) and result.bufs stays
     * empty. Buf writes are strictly sequential per thread either way.
     */
    litmus::Value *const *externalBufs = nullptr;

    /**
     * When non-null, thread t publishes n + 1 into progressCells[t]
     * after completing iteration n — the crash-salvage and streaming
     * watermark: the buf prefix below the published count is final and
     * never changes. Published with release semantics, so a reader
     * that acquires the cell sees every buf write of the covered
     * prefix (this is what lets the streaming pipeline count epochs
     * while the run is still executing, race-free and TSan-clean).
     */
    volatile std::int64_t *const *progressCells = nullptr;

    /**
     * When non-null, a thread about to run iteration n first waits
     * (PAUSE spin + yield) until n < the cell's value — the streaming
     * pipeline's backpressure: analysis raises the ceiling as it
     * drains epochs, so a runner can be at most streamRingDepth
     * epochs ahead of the slowest analysis worker and the unanalyzed
     * working set stays bounded. Null = run free with no ceiling.
     */
    const volatile std::int64_t *iterationCeiling = nullptr;
};

/**
 * Execute @p programs natively for @p iterations iterations per thread.
 *
 * With a synchronizing mode, every iteration begins at a barrier; with
 * SyncMode::None, threads synchronize only at chunk boundaries (for
 * memory reuse) in the litmus7 layout, or only at launch in the
 * perpetual layout.
 *
 * @param programs One loop body per thread (constant-store bodies for
 *        classic tests, affine bodies for perpetual tests).
 * @param num_locations Shared locations per instance.
 * @param iterations Iterations per thread (N).
 * @param config Run configuration.
 * @return bufs (paper layout), final memory of instance 0 in the
 *         perpetual layout / per-instance memory of the final chunk in
 *         the litmus7 layout, and run statistics.
 */
sim::RunResult runNative(const std::vector<sim::SimProgram> &programs,
                         int num_locations, std::int64_t iterations,
                         const NativeConfig &config);

} // namespace perple::runtime

#endif // PERPLE_RUNTIME_NATIVE_RUNNER_H
