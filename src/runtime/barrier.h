/**
 * @file
 * The five litmus7 thread-synchronization modes (Section VI-A).
 *
 *  - User: polling sense-reversing spin barrier (litmus7's default).
 *  - UserFence: the spin barrier plus MFENCEs to accelerate write
 *    propagation around the release.
 *  - Pthread: pthread_barrier_t (heavyweight, kernel futex wakeups).
 *  - Timebase: after a spin rendezvous, every thread waits until the
 *    next multiple of a timebase interval, so releases are aligned to
 *    the architecture's timestamp counter.
 *  - None: no per-iteration synchronization at all.
 */

#ifndef PERPLE_RUNTIME_BARRIER_H
#define PERPLE_RUNTIME_BARRIER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <pthread.h>
#include <string>
#include <vector>

namespace perple::runtime
{

/** litmus7 synchronization modes. */
enum class SyncMode
{
    User,
    UserFence,
    Pthread,
    Timebase,
    None,
};

/** litmus7's command-line name of @p mode ("user", "none", ...). */
std::string syncModeName(SyncMode mode);

/** Parse a litmus7 mode name; throws UserError on unknown names. */
SyncMode syncModeFromName(const std::string &name);

/** All modes, in the paper's listing order. */
const std::vector<SyncMode> &allSyncModes();

/** Abstract per-iteration barrier. */
class Barrier
{
  public:
    virtual ~Barrier() = default;

    /**
     * Block until all participants arrive (no-op for SyncMode::None).
     *
     * The polling modes (User, UserFence, Timebase) carry a failsafe:
     * a waiter that spins past the configured time cap — because a
     * peer exited, crashed or was descheduled for good on an
     * oversubscribed host — bails out, poisons the barrier, and every
     * wait from then on returns immediately (the run degrades to
     * SyncMode::None instead of livelocking). Bailouts are reported
     * via bailouts() and surface in RunStats::barrierBailouts.
     *
     * @param thread Calling thread's id (0-based).
     */
    virtual void wait(int thread) = 0;

    /** Failsafe bailouts taken so far (0 for non-polling modes). */
    virtual std::uint64_t
    bailouts() const
    {
        return 0;
    }
};

/**
 * Build the barrier implementing @p mode for @p num_threads.
 *
 * @param mode Synchronization mode.
 * @param num_threads Number of participating threads.
 * @param timebase_interval Tick interval for Timebase mode.
 * @param failsafe_seconds Polling-wait time cap before the barrier
 *        poisons itself (see Barrier::wait); 0 disables the failsafe.
 */
std::unique_ptr<Barrier> makeBarrier(SyncMode mode, int num_threads,
                                     std::uint64_t timebase_interval =
                                         2048,
                                     double failsafe_seconds = 10.0);

} // namespace perple::runtime

#endif // PERPLE_RUNTIME_BARRIER_H
