/**
 * @file
 * The five litmus7 thread-synchronization modes (Section VI-A).
 *
 *  - User: polling sense-reversing spin barrier (litmus7's default).
 *  - UserFence: the spin barrier plus MFENCEs to accelerate write
 *    propagation around the release.
 *  - Pthread: pthread_barrier_t (heavyweight, kernel futex wakeups).
 *  - Timebase: after a spin rendezvous, every thread waits until the
 *    next multiple of a timebase interval, so releases are aligned to
 *    the architecture's timestamp counter.
 *  - None: no per-iteration synchronization at all.
 */

#ifndef PERPLE_RUNTIME_BARRIER_H
#define PERPLE_RUNTIME_BARRIER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <pthread.h>
#include <string>
#include <vector>

namespace perple::runtime
{

/** litmus7 synchronization modes. */
enum class SyncMode
{
    User,
    UserFence,
    Pthread,
    Timebase,
    None,
};

/** litmus7's command-line name of @p mode ("user", "none", ...). */
std::string syncModeName(SyncMode mode);

/** Parse a litmus7 mode name; throws UserError on unknown names. */
SyncMode syncModeFromName(const std::string &name);

/** All modes, in the paper's listing order. */
const std::vector<SyncMode> &allSyncModes();

/** Abstract per-iteration barrier. */
class Barrier
{
  public:
    virtual ~Barrier() = default;

    /**
     * Block until all participants arrive (no-op for SyncMode::None).
     *
     * @param thread Calling thread's id (0-based).
     */
    virtual void wait(int thread) = 0;
};

/**
 * Build the barrier implementing @p mode for @p num_threads.
 *
 * @param mode Synchronization mode.
 * @param num_threads Number of participating threads.
 * @param timebase_interval Tick interval for Timebase mode.
 */
std::unique_ptr<Barrier> makeBarrier(SyncMode mode, int num_threads,
                                     std::uint64_t timebase_interval =
                                         2048);

} // namespace perple::runtime

#endif // PERPLE_RUNTIME_BARRIER_H
