/**
 * @file
 * Random litmus-test generation with model-checked target selection —
 * PerpLE's substitute for the diy test generator the paper's corpus
 * came from (Section VIII: "The Converter tool in PerpLE extends such
 * [litmus test generation] tools by converting newly generated litmus
 * tests to their perpetual counterpart").
 *
 * Generation is enumerate-and-classify rather than cycle-directed:
 * random well-formed bodies are produced, every register outcome is
 * classified by the operational model checkers, and the target is
 * chosen to be *informative* (forbidden under SC, so observing it
 * proves a relaxation) — preferring TSO-allowed targets ("relaxed"
 * tests that a TSO machine should expose) and falling back to
 * TSO-forbidden ones ("safe" tests that flag broken hardware).
 * Candidates with no informative outcome are discarded. This is
 * tractable because litmus tests are tiny.
 */

#ifndef PERPLE_GENERATE_GENERATOR_H
#define PERPLE_GENERATE_GENERATOR_H

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "litmus/registry.h"
#include "litmus/test.h"
#include "model/operational.h"

namespace perple::generate
{

/** Shape constraints for generated tests. */
struct GeneratorConfig
{
    int minThreads = 2;
    int maxThreads = 3;
    int maxLocations = 3;

    /** Maximum memory operations per thread (fences extra). */
    int maxOpsPerThread = 3;

    /** Probability of inserting an MFENCE between two ops. */
    double fenceProbability = 0.15;

    /** Distinct constants allowed per location (k_mem bound). */
    int maxStoredValuesPerLocation = 2;

    /** Cap on enumerated outcomes per candidate (cost bound). */
    std::size_t maxOutcomes = 256;

    /**
     * Probability that a generated access carries a C11 ordering
     * annotation (loads draw acquire/relaxed, stores release/relaxed,
     * uniformly). Zero — the default — consumes no extra randomness,
     * so legacy seeds reproduce byte-identical un-annotated suites.
     */
    double annotateProbability = 0.0;
};

/** One generated test with its model-checked metadata. */
struct GeneratedTest
{
    litmus::Test test;

    /** Target verdict under x86-TSO (always SC-forbidden). */
    litmus::TsoVerdict tsoVerdict = litmus::TsoVerdict::Forbidden;

    /** Target verdict under PSO. */
    litmus::TsoVerdict psoVerdict = litmus::TsoVerdict::Forbidden;

    /** Target verdict under C11 Release-Acquire. */
    litmus::TsoVerdict raVerdict = litmus::TsoVerdict::Forbidden;
};

/**
 * Generate one random well-formed candidate body (no target chosen).
 *
 * @param config Shape constraints.
 * @param[in,out] rng Randomness source.
 * @return A validated test with an empty target, or nullopt when the
 *         draw produced a degenerate shape (caller retries).
 */
std::optional<litmus::Test>
generateCandidate(const GeneratorConfig &config, Rng &rng);

/**
 * Generate @p count tests with informative, model-checked targets.
 *
 * Deterministic in @p seed. Names are "gen<seed>-<index>".
 *
 * @param count Number of tests to produce.
 * @param config Shape constraints.
 * @param seed RNG seed.
 */
std::vector<GeneratedTest> generateSuite(int count,
                                         const GeneratorConfig &config,
                                         std::uint64_t seed);

} // namespace perple::generate

#endif // PERPLE_GENERATE_GENERATOR_H
