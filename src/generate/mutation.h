/**
 * @file
 * Shape mutations over litmus tests — the reduction moves of the
 * differential fuzzer's test-case shrinker (src/fuzz/shrink.h).
 *
 * Every mutation returns a *smaller* well-formed test or nullopt. The
 * hooks repair all cross-references the structural edit breaks (thread
 * ids in outcome conditions, register ids after a load is removed,
 * location ids after unused locations are dropped) and then run the
 * full litmus validator; a mutation whose repaired result still fails
 * validation — e.g. dropping the only store whose constant a target
 * condition names — is rejected with nullopt rather than producing an
 * ill-formed test. Callers therefore maintain the invariant "valid in,
 * valid or nullopt out".
 */

#ifndef PERPLE_GENERATE_MUTATION_H
#define PERPLE_GENERATE_MUTATION_H

#include <optional>

#include "litmus/test.h"

namespace perple::generate
{

/**
 * Remove thread @p thread from @p test.
 *
 * Target conditions on the dropped thread are removed; thread ids above
 * @p thread shift down by one.
 *
 * @param test A validated test.
 * @param thread Thread to drop.
 * @return The reduced test, or nullopt when the result is invalid
 *         (fewer than two threads left, or a surviving condition names
 *         a constant only the dropped thread stored).
 */
std::optional<litmus::Test> dropThread(const litmus::Test &test,
                                       litmus::ThreadId thread);

/**
 * Remove instruction @p index of thread @p thread from @p test.
 *
 * Dropping a load (or XCHG) also removes its destination register:
 * conditions on that register are removed and higher register ids of
 * the thread shift down.
 *
 * @param test A validated test.
 * @param thread Owning thread.
 * @param index Instruction index within the thread.
 * @return The reduced test, or nullopt when the result is invalid
 *         (thread left without a memory operation, orphaned condition
 *         values, ...).
 */
std::optional<litmus::Test> dropInstruction(const litmus::Test &test,
                                            litmus::ThreadId thread,
                                            int index);

/**
 * Canonicalize values and locations: renumber the constants stored to
 * each location densely to 1..k (preserving their relative order) and
 * drop locations no instruction or memory condition references. All
 * store operands and condition values are rewritten consistently.
 *
 * @param test A validated test.
 * @return The canonicalized test, or nullopt when @p test is already
 *         canonical (the mutation made no progress).
 */
std::optional<litmus::Test> shrinkConstants(const litmus::Test &test);

} // namespace perple::generate

#endif // PERPLE_GENERATE_MUTATION_H
