#include "generate/mutation.h"

#include <algorithm>
#include <map>

#include "litmus/validator.h"

namespace perple::generate
{

using litmus::Condition;
using litmus::LocationId;
using litmus::RegisterId;
using litmus::Test;
using litmus::ThreadId;
using litmus::Value;

namespace
{

/** Validate-or-reject: the shared tail of every mutation. */
std::optional<Test>
accept(Test test)
{
    if (!litmus::validate(test).ok())
        return std::nullopt;
    return test;
}

} // namespace

std::optional<Test>
dropThread(const Test &test, ThreadId thread)
{
    if (thread < 0 || thread >= test.numThreads())
        return std::nullopt;

    Test reduced = test;
    reduced.threads.erase(reduced.threads.begin() + thread);

    std::vector<Condition> conditions;
    for (Condition cond : reduced.target.conditions) {
        if (cond.kind == Condition::Kind::Register) {
            if (cond.thread == thread)
                continue;
            if (cond.thread > thread)
                --cond.thread;
        }
        conditions.push_back(cond);
    }
    reduced.target.conditions = std::move(conditions);
    return accept(std::move(reduced));
}

std::optional<Test>
dropInstruction(const Test &test, ThreadId thread, int index)
{
    if (thread < 0 || thread >= test.numThreads())
        return std::nullopt;
    Test reduced = test;
    auto &body = reduced.threads[static_cast<std::size_t>(thread)];
    if (index < 0 ||
        index >= static_cast<int>(body.instructions.size()))
        return std::nullopt;

    const litmus::Instruction dropped =
        body.instructions[static_cast<std::size_t>(index)];
    body.instructions.erase(body.instructions.begin() + index);

    if (dropped.readsRegister()) {
        // The register disappears with its unique defining load: shift
        // higher register ids of this thread down, in the remaining
        // instructions and in the target conditions.
        body.registerNames.erase(body.registerNames.begin() +
                                 dropped.reg);
        for (auto &instr : body.instructions)
            if (instr.readsRegister() && instr.reg > dropped.reg)
                --instr.reg;
        std::vector<Condition> conditions;
        for (Condition cond : reduced.target.conditions) {
            if (cond.kind == Condition::Kind::Register &&
                cond.thread == thread) {
                if (cond.reg == dropped.reg)
                    continue;
                if (cond.reg > dropped.reg)
                    --cond.reg;
            }
            conditions.push_back(cond);
        }
        reduced.target.conditions = std::move(conditions);
    }
    return accept(std::move(reduced));
}

std::optional<Test>
shrinkConstants(const Test &test)
{
    // Locations kept: referenced by an instruction or a memory
    // condition (an unused location a condition still names would make
    // the result unparseable once dropped).
    std::vector<bool> used(static_cast<std::size_t>(test.numLocations()),
                           false);
    for (const auto &thread : test.threads)
        for (const auto &instr : thread.instructions)
            if (!instr.isFence())
                used[static_cast<std::size_t>(instr.loc)] = true;
    for (const auto &cond : test.target.conditions)
        if (cond.kind == Condition::Kind::Memory)
            used[static_cast<std::size_t>(cond.loc)] = true;

    std::vector<LocationId> loc_map(
        static_cast<std::size_t>(test.numLocations()), -1);
    Test reduced = test;
    reduced.locations.clear();
    for (LocationId loc = 0; loc < test.numLocations(); ++loc) {
        if (!used[static_cast<std::size_t>(loc)])
            continue;
        loc_map[static_cast<std::size_t>(loc)] =
            static_cast<LocationId>(reduced.locations.size());
        reduced.locations.push_back(
            test.locations[static_cast<std::size_t>(loc)]);
    }

    // Dense renumbering 1..k per location, ascending original order.
    std::vector<std::map<Value, Value>> value_map(
        static_cast<std::size_t>(test.numLocations()));
    for (LocationId loc = 0; loc < test.numLocations(); ++loc) {
        Value next = 1;
        for (const Value v : test.storedValues(loc))
            value_map[static_cast<std::size_t>(loc)][v] = next++;
    }

    for (auto &thread : reduced.threads) {
        for (auto &instr : thread.instructions) {
            if (instr.isFence())
                continue;
            if (instr.writesMemory())
                instr.value = value_map[static_cast<std::size_t>(
                    instr.loc)][instr.value];
            instr.loc = loc_map[static_cast<std::size_t>(instr.loc)];
        }
    }

    for (auto &cond : reduced.target.conditions) {
        if (cond.kind == Condition::Kind::Memory) {
            if (cond.value != 0)
                cond.value = value_map[static_cast<std::size_t>(
                    cond.loc)][cond.value];
            cond.loc = loc_map[static_cast<std::size_t>(cond.loc)];
        } else if (cond.value != 0) {
            // A register condition's value lives in the sequence of the
            // location its unique defining load reads.
            const int load =
                test.loadIndexForRegister(cond.thread, cond.reg);
            if (load < 0)
                return std::nullopt; // Invalid input; nothing sane to do.
            const LocationId loc =
                test.threads[static_cast<std::size_t>(cond.thread)]
                    .instructions[static_cast<std::size_t>(load)]
                    .loc;
            cond.value =
                value_map[static_cast<std::size_t>(loc)][cond.value];
        }
    }

    if (reduced == test)
        return std::nullopt; // Already canonical: no progress.
    return accept(std::move(reduced));
}

} // namespace perple::generate
