#include "generate/generator.h"

#include <algorithm>

#include "common/error.h"
#include "common/strings.h"
#include "litmus/outcome.h"
#include "litmus/validator.h"

namespace perple::generate
{

using litmus::Instruction;
using litmus::LocationId;
using litmus::Outcome;
using litmus::Test;
using litmus::ThreadId;
using litmus::TsoVerdict;
using litmus::Value;

namespace
{

const char *kRegisterNames[] = {"EAX", "EBX", "ECX", "EDX"};
const char *kLocationNames[] = {"x", "y", "z", "w"};

} // namespace

std::optional<Test>
generateCandidate(const GeneratorConfig &config, Rng &rng)
{
    checkUser(config.minThreads >= 2 &&
                  config.maxThreads >= config.minThreads,
              "generator needs at least two threads");
    checkUser(config.maxLocations >= 2 && config.maxLocations <= 4,
              "generator supports 2..4 locations");
    checkUser(config.maxOpsPerThread >= 1 &&
              config.maxOpsPerThread <= 4,
              "generator supports 1..4 memory ops per thread");

    const int num_threads = static_cast<int>(rng.nextInRange(
        config.minThreads, config.maxThreads));
    const int num_locations =
        static_cast<int>(rng.nextInRange(2, config.maxLocations));

    Test test;
    test.doc = "generated";
    for (int loc = 0; loc < num_locations; ++loc)
        test.locations.push_back(kLocationNames[loc]);

    // Next constant to store per location (uniqueness + positivity).
    std::vector<Value> next_value(
        static_cast<std::size_t>(num_locations), 1);
    std::vector<int> stores_per_location(
        static_cast<std::size_t>(num_locations), 0);

    // Annotation draws are guarded so the default (probability 0)
    // consumes no randomness and legacy seeds stay reproducible.
    const auto drawOrder = [&](litmus::MemoryOrder strong) {
        if (config.annotateProbability <= 0.0 ||
            !rng.nextBool(config.annotateProbability))
            return litmus::MemoryOrder::Plain;
        return rng.nextBool(0.5) ? strong
                                 : litmus::MemoryOrder::Relaxed;
    };

    for (int t = 0; t < num_threads; ++t) {
        litmus::Thread thread;
        const int num_ops = static_cast<int>(
            rng.nextInRange(1, config.maxOpsPerThread));
        int loads = 0;
        for (int i = 0; i < num_ops; ++i) {
            const auto loc = static_cast<LocationId>(
                rng.nextBelow(static_cast<std::uint64_t>(
                    num_locations)));
            const bool can_store =
                stores_per_location[static_cast<std::size_t>(loc)] <
                config.maxStoredValuesPerLocation;
            const bool store = can_store && loads >= 4
                ? true
                : (can_store ? rng.nextBool(0.5) : false);
            if (store) {
                thread.instructions.push_back(Instruction::makeStore(
                    loc,
                    next_value[static_cast<std::size_t>(loc)]++,
                    drawOrder(litmus::MemoryOrder::Release)));
                ++stores_per_location[static_cast<std::size_t>(loc)];
            } else {
                if (loads >= 4)
                    continue; // Out of register names.
                thread.registerNames.push_back(
                    kRegisterNames[loads]);
                thread.instructions.push_back(Instruction::makeLoad(
                    loc, static_cast<litmus::RegisterId>(loads),
                    drawOrder(litmus::MemoryOrder::Acquire)));
                ++loads;
            }
            if (i + 1 < num_ops &&
                rng.nextBool(config.fenceProbability))
                thread.instructions.push_back(
                    Instruction::makeFence());
        }
        if (thread.instructions.empty())
            return std::nullopt;
        test.threads.push_back(std::move(thread));
    }

    // Degenerate shapes: no loads anywhere (no outcomes to pick), or a
    // location loaded but never stored combined with nothing else is
    // fine — the validator rules out the rest.
    int total_loads = 0, total_stores = 0;
    for (const auto &thread : test.threads) {
        total_loads += thread.numLoads();
        total_stores += thread.numStores();
    }
    if (total_loads == 0 || total_stores == 0)
        return std::nullopt;

    if (!litmus::validate(test).ok())
        return std::nullopt;
    return test;
}

std::vector<GeneratedTest>
generateSuite(int count, const GeneratorConfig &config,
              std::uint64_t seed)
{
    checkUser(count > 0, "generateSuite needs a positive count");
    Rng rng(seed);
    std::vector<GeneratedTest> suite;

    int attempts = 0;
    const int max_attempts = count * 200;
    while (static_cast<int>(suite.size()) < count &&
           attempts++ < max_attempts) {
        auto candidate = generateCandidate(config, rng);
        if (!candidate)
            continue;
        Test test = std::move(*candidate);

        auto outcomes = litmus::enumerateRegisterOutcomes(test);
        if (outcomes.size() > config.maxOutcomes)
            continue;

        // Classify and pick an informative target: SC-forbidden,
        // preferring TSO-allowed ("relaxed") over TSO-forbidden
        // ("safe"). Shuffle so ties break randomly.
        rng.shuffle(outcomes);
        const auto sc_states =
            model::enumerateFinalStates(test, model::MemoryModel::SC);
        const auto tso_states =
            model::enumerateFinalStates(test, model::MemoryModel::TSO);
        const auto satisfied = [](const auto &states,
                                  const Outcome &outcome) {
            for (const auto &state : states)
                if (state.satisfies(outcome))
                    return true;
            return false;
        };

        const Outcome *relaxed = nullptr;
        const Outcome *safe = nullptr;
        for (const auto &outcome : outcomes) {
            if (satisfied(sc_states, outcome))
                continue; // Not informative.
            if (satisfied(tso_states, outcome)) {
                if (!relaxed)
                    relaxed = &outcome;
            } else if (!safe) {
                safe = &outcome;
            }
            if (relaxed)
                break;
        }
        const Outcome *target = relaxed ? relaxed : safe;
        if (!target)
            continue; // No informative outcome; discard.

        GeneratedTest generated;
        test.target = *target;
        test.name = format("gen%llu-%zu",
                           static_cast<unsigned long long>(seed),
                           suite.size());
        generated.tsoVerdict = relaxed ? TsoVerdict::Allowed
                                       : TsoVerdict::Forbidden;
        generated.psoVerdict =
            model::allows(test, test.target, model::MemoryModel::PSO)
                ? TsoVerdict::Allowed
                : TsoVerdict::Forbidden;
        generated.raVerdict =
            model::allows(test, test.target, model::MemoryModel::RA)
                ? TsoVerdict::Allowed
                : TsoVerdict::Forbidden;
        generated.test = std::move(test);
        suite.push_back(std::move(generated));
    }
    checkUser(static_cast<int>(suite.size()) == count,
              "generator failed to produce enough informative tests; "
              "loosen the configuration");
    return suite;
}

} // namespace perple::generate
