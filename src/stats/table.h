/**
 * @file
 * Fixed-width console tables and CSV emission for the benches.
 *
 * Every bench prints its rows through this printer so the outputs in
 * bench_output.txt / EXPERIMENTS.md share one format.
 */

#ifndef PERPLE_STATS_TABLE_H
#define PERPLE_STATS_TABLE_H

#include <cstdint>
#include <string>
#include <vector>

namespace perple::stats
{

/** A simple column-aligned text table. */
class Table
{
  public:
    /** Create with @p headers as the first row. */
    explicit Table(std::vector<std::string> headers);

    /** Append a data row (must match the header width). */
    void addRow(std::vector<std::string> row);

    /** Render with aligned columns (first column left, rest right). */
    std::string toString() const;

    /** Render as CSV. */
    std::string toCsv() const;

    /** Number of data rows. */
    std::size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double compactly ("12.3", "4.56e+07", "0"). */
std::string formatNumber(double value);

/** Format a count with thousands grouping ("1,234,567"). */
std::string formatCount(std::uint64_t value);

} // namespace perple::stats

#endif // PERPLE_STATS_TABLE_H
