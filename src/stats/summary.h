/**
 * @file
 * Aggregation helpers used by the evaluation benches.
 *
 * The paper reports geometric-mean speedups (Figure 10) and arithmetic
 * means of per-test detection-rate ratios (Figure 11, with zero-baseline
 * cases omitted); these helpers implement exactly those conventions.
 */

#ifndef PERPLE_STATS_SUMMARY_H
#define PERPLE_STATS_SUMMARY_H

#include <vector>

namespace perple::stats
{

/** Geometric mean of positive values; requires a nonempty input. */
double geometricMean(const std::vector<double> &values);

/** Arithmetic mean; requires a nonempty input. */
double arithmeticMean(const std::vector<double> &values);

/**
 * Mean of ratios a[i] / b[i], omitting pairs with b[i] == 0 (the
 * paper's convention for detection-rate improvements, Section VII-C).
 *
 * @param numerators a.
 * @param denominators b (same length).
 * @param[out] omitted Number of zero-denominator pairs skipped.
 * @return Arithmetic mean of the surviving ratios, or 0 if none.
 */
double meanOfRatiosOmittingZeroBaseline(
    const std::vector<double> &numerators,
    const std::vector<double> &denominators, int &omitted);

} // namespace perple::stats

#endif // PERPLE_STATS_SUMMARY_H
