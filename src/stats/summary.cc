#include "stats/summary.h"

#include <cmath>

#include "common/error.h"

namespace perple::stats
{

double
geometricMean(const std::vector<double> &values)
{
    checkUser(!values.empty(), "geometric mean of an empty set");
    double log_sum = 0;
    for (const double v : values) {
        checkUser(v > 0, "geometric mean requires positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
arithmeticMean(const std::vector<double> &values)
{
    checkUser(!values.empty(), "arithmetic mean of an empty set");
    double sum = 0;
    for (const double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
meanOfRatiosOmittingZeroBaseline(const std::vector<double> &numerators,
                                 const std::vector<double> &denominators,
                                 int &omitted)
{
    checkUser(numerators.size() == denominators.size(),
              "ratio inputs must have equal length");
    std::vector<double> ratios;
    omitted = 0;
    for (std::size_t i = 0; i < numerators.size(); ++i) {
        if (denominators[i] == 0.0) {
            ++omitted;
            continue;
        }
        ratios.push_back(numerators[i] / denominators[i]);
    }
    if (ratios.empty())
        return 0.0;
    return arithmeticMean(ratios);
}

} // namespace perple::stats
