/**
 * @file
 * Integer histograms and probability density estimates.
 *
 * Used for the thread-skew distribution of Figure 12 and for outcome
 * tallies.
 */

#ifndef PERPLE_STATS_HISTOGRAM_H
#define PERPLE_STATS_HISTOGRAM_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace perple::stats
{

/** Sparse histogram over signed integer samples. */
class Histogram
{
  public:
    /** Record one sample. */
    void add(std::int64_t sample, std::uint64_t weight = 1);

    /** Total recorded weight. */
    std::uint64_t count() const { return total_; }

    /** Weight recorded at exactly @p sample. */
    std::uint64_t at(std::int64_t sample) const;

    /** Smallest recorded sample; requires count() > 0. */
    std::int64_t min() const;

    /** Largest recorded sample; requires count() > 0. */
    std::int64_t max() const;

    /** Weighted mean of the samples; requires count() > 0. */
    double mean() const;

    /** Weighted standard deviation; requires count() > 0. */
    double stddev() const;

    /** Fraction of weight at @p sample. */
    double density(std::int64_t sample) const;

    /**
     * Re-bin into @p num_bins equal-width bins across [min, max].
     *
     * @return (bin center, probability density) pairs; density
     *         integrates to ~1 over the support.
     */
    std::vector<std::pair<double, double>> binned(int num_bins) const;

    /** All (sample, weight) pairs, ascending. */
    const std::map<std::int64_t, std::uint64_t> &
    samples() const
    {
        return bins_;
    }

  private:
    std::map<std::int64_t, std::uint64_t> bins_;
    std::uint64_t total_ = 0;
};

} // namespace perple::stats

#endif // PERPLE_STATS_HISTOGRAM_H
