#include "stats/histogram.h"

#include <cmath>

#include "common/error.h"

namespace perple::stats
{

void
Histogram::add(std::int64_t sample, std::uint64_t weight)
{
    bins_[sample] += weight;
    total_ += weight;
}

std::uint64_t
Histogram::at(std::int64_t sample) const
{
    const auto it = bins_.find(sample);
    return it == bins_.end() ? 0 : it->second;
}

std::int64_t
Histogram::min() const
{
    checkUser(total_ > 0, "empty histogram has no min");
    return bins_.begin()->first;
}

std::int64_t
Histogram::max() const
{
    checkUser(total_ > 0, "empty histogram has no max");
    return bins_.rbegin()->first;
}

double
Histogram::mean() const
{
    checkUser(total_ > 0, "empty histogram has no mean");
    double sum = 0;
    for (const auto &[sample, weight] : bins_)
        sum += static_cast<double>(sample) *
               static_cast<double>(weight);
    return sum / static_cast<double>(total_);
}

double
Histogram::stddev() const
{
    const double mu = mean();
    double sum = 0;
    for (const auto &[sample, weight] : bins_) {
        const double d = static_cast<double>(sample) - mu;
        sum += d * d * static_cast<double>(weight);
    }
    return std::sqrt(sum / static_cast<double>(total_));
}

double
Histogram::density(std::int64_t sample) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(at(sample)) /
           static_cast<double>(total_);
}

std::vector<std::pair<double, double>>
Histogram::binned(int num_bins) const
{
    checkUser(num_bins > 0, "need a positive bin count");
    checkUser(total_ > 0, "cannot bin an empty histogram");

    const double lo = static_cast<double>(min());
    const double hi = static_cast<double>(max());
    const double width = (hi - lo) / num_bins;
    std::vector<std::pair<double, double>> out(
        static_cast<std::size_t>(num_bins));
    for (int b = 0; b < num_bins; ++b)
        out[static_cast<std::size_t>(b)] = {lo + width * (b + 0.5), 0.0};
    if (width <= 0.0) {
        // Degenerate support: all mass in one bin.
        out[0] = {lo, 1.0};
        return out;
    }
    for (const auto &[sample, weight] : bins_) {
        int b = static_cast<int>((static_cast<double>(sample) - lo) /
                                 width);
        if (b == num_bins)
            --b;
        out[static_cast<std::size_t>(b)].second +=
            static_cast<double>(weight);
    }
    for (auto &[center, mass] : out)
        mass /= static_cast<double>(total_) * width;
    return out;
}

} // namespace perple::stats
