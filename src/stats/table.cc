#include "stats/table.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/error.h"
#include "common/strings.h"

namespace perple::stats
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    checkUser(!headers_.empty(), "a table needs at least one column");
}

void
Table::addRow(std::vector<std::string> row)
{
    checkUser(row.size() == headers_.size(),
              "table row width does not match the header");
    rows_.push_back(std::move(row));
}

std::string
Table::toString() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    const auto emit = [&](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            std::string cell = row[c];
            if (c == 0) {
                cell.resize(widths[c], ' '); // Left-align names.
            } else {
                cell.insert(0, widths[c] - cell.size(), ' ');
            }
            line += cell;
            if (c + 1 != row.size())
                line += "  ";
        }
        // Trim trailing spaces.
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string out = emit(headers_);
    std::string rule;
    for (std::size_t c = 0; c < widths.size(); ++c) {
        rule += std::string(widths[c], '-');
        if (c + 1 != widths.size())
            rule += "  ";
    }
    out += rule + "\n";
    for (const auto &row : rows_)
        out += emit(row);
    return out;
}

std::string
Table::toCsv() const
{
    const auto emit = [](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c != 0)
                line += ",";
            line += row[c];
        }
        return line + "\n";
    };
    std::string out = emit(headers_);
    for (const auto &row : rows_)
        out += emit(row);
    return out;
}

std::string
formatNumber(double value)
{
    if (value == 0.0)
        return "0";
    const double magnitude = std::fabs(value);
    if (magnitude >= 1e7 || magnitude < 1e-3)
        return format("%.3g", value);
    if (magnitude >= 100)
        return format("%.0f", value);
    if (magnitude >= 1)
        return format("%.2f", value);
    return format("%.4f", value);
}

std::string
formatCount(std::uint64_t value)
{
    std::string digits = format("%llu",
                                static_cast<unsigned long long>(value));
    std::string out;
    int since_group = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (since_group == 3) {
            out += ',';
            since_group = 0;
        }
        out += *it;
        ++since_group;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

} // namespace perple::stats
