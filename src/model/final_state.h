/**
 * @file
 * Final states of single-iteration litmus-test executions.
 */

#ifndef PERPLE_MODEL_FINAL_STATE_H
#define PERPLE_MODEL_FINAL_STATE_H

#include <string>
#include <vector>

#include "litmus/outcome.h"
#include "litmus/test.h"

namespace perple::model
{

/**
 * The observable result of one complete execution: every register of
 * every thread plus final shared memory (after all buffers drained).
 */
struct FinalState
{
    /** regs[t][r] is the final value of register r of thread t. */
    std::vector<std::vector<litmus::Value>> regs;

    /** memory[loc] is the final value of each shared location. */
    std::vector<litmus::Value> memory;

    /** True if this state satisfies every condition of @p outcome. */
    bool satisfies(const litmus::Outcome &outcome) const;

    /** Canonical serialization, used for dedup and as a map key. */
    std::string key() const;

    bool
    operator==(const FinalState &other) const
    {
        return regs == other.regs && memory == other.memory;
    }

    bool
    operator<(const FinalState &other) const
    {
        if (regs != other.regs)
            return regs < other.regs;
        return memory < other.memory;
    }
};

} // namespace perple::model

#endif // PERPLE_MODEL_FINAL_STATE_H
