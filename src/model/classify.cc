#include "model/classify.h"

namespace perple::model
{

litmus::TsoVerdict
classifyTargetTso(const litmus::Test &test)
{
    return classifyTarget(test, MemoryModel::TSO);
}

litmus::TsoVerdict
classifyTarget(const litmus::Test &test, MemoryModel model)
{
    return allows(test, test.target, model)
               ? litmus::TsoVerdict::Allowed
               : litmus::TsoVerdict::Forbidden;
}

bool
targetDistinguishesFromSc(const litmus::Test &test)
{
    return !allows(test, test.target, MemoryModel::SC);
}

} // namespace perple::model
