#include "model/axiomatic.h"

#include <algorithm>

#include "common/error.h"
#include "model/hbgraph.h"

namespace perple::model
{

namespace
{

/**
 * Atomicity side condition for locked read-modify-writes: for every
 * Rmw whose register the outcome constrains, the store it read from
 * must be its immediate predecessor in the location's write
 * serialization (or the Rmw's store must be first when it read the
 * initial value) — no other store may intervene between an XCHG's
 * load and its store.
 */
bool
rmwAtomicityHolds(const litmus::Test &test,
                  const litmus::Outcome &outcome,
                  const std::vector<std::vector<OpRef>> &ws_orders)
{
    for (const auto &cond : outcome.conditions) {
        if (cond.kind != litmus::Condition::Kind::Register)
            continue;
        const int index =
            test.loadIndexForRegister(cond.thread, cond.reg);
        if (index < 0)
            continue;
        const auto &instr =
            test.threads[static_cast<std::size_t>(cond.thread)]
                .instructions[static_cast<std::size_t>(index)];
        if (!instr.isRmw())
            continue;

        const auto &order =
            ws_orders[static_cast<std::size_t>(instr.loc)];
        const OpRef own{cond.thread, index};
        const auto own_pos =
            std::find(order.begin(), order.end(), own);
        checkInternal(own_pos != order.end(),
                      "Rmw store missing from its ws order");

        if (cond.value == 0) {
            // Read the initial value: the Rmw's store must be first.
            if (own_pos != order.begin())
                return false;
            continue;
        }
        litmus::ThreadId src_thread = -1;
        int src_index = -1;
        if (!test.findStoreOf(instr.loc, cond.value, src_thread,
                              src_index))
            return false;
        if (own_pos == order.begin())
            return false;
        const OpRef source{src_thread, src_index};
        if (!(*(std::prev(own_pos)) == source))
            return false;
    }
    return true;
}

/** Square boolean relation with in-place transitive closure. */
struct Relation
{
    explicit Relation(std::size_t n)
        : size(n), bits(n * n, 0)
    {}

    char &
    at(std::size_t a, std::size_t b)
    {
        return bits[a * size + b];
    }

    bool
    has(std::size_t a, std::size_t b) const
    {
        return bits[a * size + b] != 0;
    }

    void
    close()
    {
        for (std::size_t k = 0; k < size; ++k)
            for (std::size_t a = 0; a < size; ++a) {
                if (!has(a, k))
                    continue;
                for (std::size_t b = 0; b < size; ++b)
                    if (has(k, b))
                        at(a, b) = 1;
            }
    }

    std::size_t size;
    std::vector<char> bits;
};

/**
 * RC11-style Release-Acquire consistency of one candidate execution
 * (an rf choice via @p graph's outcome, a modification order via the
 * graph's ws edges, and an SC order of the fences via @p fence_order):
 *
 *  - acyclic(po ∪ rf ∪ sc): no load buffering and the fence order is
 *    realizable (the view machine executes reads after the write they
 *    read and fences in SC order, so any machine run linearizes this
 *    relation);
 *  - coherence: irreflexive(hb ; eco?) with hb = (po ∪ sw ∪ sc)+,
 *    sw = rf edges from a release write to an acquire read, and
 *    eco = (rf ∪ ws ∪ fr)+ — this single check subsumes the four
 *    per-location coherence axioms CoWW/CoWR/CoRW/CoRR.
 *
 * Vertices are all instructions including fences; reading the initial
 * value contributes fr edges (HbGraph's convention), which is exactly
 * the mo-minimal pseudo-write treatment RA needs.
 */
bool
raConsistent(const litmus::Test &test, const std::vector<OpRef> &ops,
             const HbGraph &graph, const std::vector<OpRef> &fence_order)
{
    const std::size_t n = ops.size();
    const auto idOf = [&](const OpRef &op) {
        for (std::size_t i = 0; i < n; ++i)
            if (ops[i] == op)
                return i;
        checkInternal(false, "unknown op in RA consistency check");
        return n;
    };
    const auto instrOf = [&](const OpRef &op) -> const auto & {
        return test.threads[static_cast<std::size_t>(op.thread)]
            .instructions[static_cast<std::size_t>(op.index)];
    };

    Relation order(n); // po ∪ rf ∪ sc: must be acyclic.
    Relation hb(n);    // po ∪ sw ∪ sc.
    Relation eco(n);   // rf ∪ ws ∪ fr (per location by construction).

    for (std::size_t a = 0; a < n; ++a)
        for (std::size_t b = a + 1; b < n; ++b)
            if (ops[a].thread == ops[b].thread) {
                order.at(a, b) = 1;
                hb.at(a, b) = 1;
            }
    for (std::size_t i = 0; i + 1 < fence_order.size(); ++i) {
        const std::size_t a = idOf(fence_order[i]);
        const std::size_t b = idOf(fence_order[i + 1]);
        order.at(a, b) = 1;
        hb.at(a, b) = 1;
    }
    for (const auto &edge : graph.edges()) {
        const std::size_t a = idOf(edge.from);
        const std::size_t b = idOf(edge.to);
        switch (edge.kind) {
          case EdgeKind::Po:
            break; // Rebuilt above, including fences.
          case EdgeKind::Rf:
            order.at(a, b) = 1;
            eco.at(a, b) = 1;
            if (instrOf(edge.from).raRelease() &&
                instrOf(edge.to).raAcquire())
                hb.at(a, b) = 1;
            break;
          case EdgeKind::Ws:
          case EdgeKind::Fr:
            eco.at(a, b) = 1;
            break;
        }
    }
    order.close();
    hb.close();
    eco.close();

    for (std::size_t a = 0; a < n; ++a)
        if (order.has(a, a))
            return false;
    for (std::size_t a = 0; a < n; ++a)
        for (std::size_t b = 0; b < n; ++b)
            if (hb.has(a, b) && eco.has(b, a))
                return false;
    return true;
}

/**
 * The Release-Acquire leg: existential over modification orders and
 * SC fence orders, checking raConsistent() plus RMW atomicity.
 */
bool
allowsAxiomaticRa(const litmus::Test &test,
                  const litmus::Outcome &outcome)
{
    std::vector<OpRef> ops;
    for (litmus::ThreadId t = 0; t < test.numThreads(); ++t) {
        const auto &instructions =
            test.threads[static_cast<std::size_t>(t)].instructions;
        for (std::size_t i = 0; i < instructions.size(); ++i)
            ops.push_back({t, static_cast<int>(i)});
    }

    const auto fence_orders = enumerateScFenceOrders(test);
    for (const auto &ws : enumerateWsOrders(test)) {
        if (!rmwAtomicityHolds(test, outcome, ws))
            continue;
        const HbGraph graph(test, outcome, ws);
        for (const auto &fence_order : fence_orders)
            if (raConsistent(test, ops, graph, fence_order))
                return true;
    }
    return false;
}

} // namespace

bool
allowsAxiomatic(const litmus::Test &test, const litmus::Outcome &outcome,
                MemoryModel model)
{
    checkUser(!outcome.hasMemoryCondition(),
              "the axiomatic checker only handles register conditions; "
              "use the operational checker for final-memory outcomes");

    if (model == MemoryModel::RA)
        return allowsAxiomaticRa(test, outcome);

    const auto all_kinds = std::vector<EdgeKind>{
        EdgeKind::Po, EdgeKind::Rf, EdgeKind::Ws, EdgeKind::Fr};

    for (const auto &ws : enumerateWsOrders(test)) {
        if (!rmwAtomicityHolds(test, outcome, ws))
            continue;
        const HbGraph graph(test, outcome, ws);

        if (model == MemoryModel::SC) {
            if (graph.acyclic(all_kinds))
                return true;
            continue;
        }

        // TSO / PSO: uniproc (SC per location) ...
        HbGraph::AcyclicSpec uniproc;
        uniproc.kinds = all_kinds;
        uniproc.poSameLocationOnly = true;
        if (!graph.acyclic(uniproc))
            continue;

        // ... and the global-happens-before condition; PSO
        // additionally drops unfenced store->store program order.
        HbGraph::AcyclicSpec ghb;
        ghb.kinds = all_kinds;
        ghb.excludeWrPo = true;
        ghb.excludeWwPo = model == MemoryModel::PSO;
        ghb.externalRfOnly = true;
        if (graph.acyclic(ghb))
            return true;
    }
    return false;
}

} // namespace perple::model
