#include "model/axiomatic.h"

#include <algorithm>

#include "common/error.h"
#include "model/hbgraph.h"

namespace perple::model
{

namespace
{

/**
 * Atomicity side condition for locked read-modify-writes: for every
 * Rmw whose register the outcome constrains, the store it read from
 * must be its immediate predecessor in the location's write
 * serialization (or the Rmw's store must be first when it read the
 * initial value) — no other store may intervene between an XCHG's
 * load and its store.
 */
bool
rmwAtomicityHolds(const litmus::Test &test,
                  const litmus::Outcome &outcome,
                  const std::vector<std::vector<OpRef>> &ws_orders)
{
    for (const auto &cond : outcome.conditions) {
        if (cond.kind != litmus::Condition::Kind::Register)
            continue;
        const int index =
            test.loadIndexForRegister(cond.thread, cond.reg);
        if (index < 0)
            continue;
        const auto &instr =
            test.threads[static_cast<std::size_t>(cond.thread)]
                .instructions[static_cast<std::size_t>(index)];
        if (!instr.isRmw())
            continue;

        const auto &order =
            ws_orders[static_cast<std::size_t>(instr.loc)];
        const OpRef own{cond.thread, index};
        const auto own_pos =
            std::find(order.begin(), order.end(), own);
        checkInternal(own_pos != order.end(),
                      "Rmw store missing from its ws order");

        if (cond.value == 0) {
            // Read the initial value: the Rmw's store must be first.
            if (own_pos != order.begin())
                return false;
            continue;
        }
        litmus::ThreadId src_thread = -1;
        int src_index = -1;
        if (!test.findStoreOf(instr.loc, cond.value, src_thread,
                              src_index))
            return false;
        if (own_pos == order.begin())
            return false;
        const OpRef source{src_thread, src_index};
        if (!(*(std::prev(own_pos)) == source))
            return false;
    }
    return true;
}

} // namespace

bool
allowsAxiomatic(const litmus::Test &test, const litmus::Outcome &outcome,
                MemoryModel model)
{
    checkUser(!outcome.hasMemoryCondition(),
              "the axiomatic checker only handles register conditions; "
              "use the operational checker for final-memory outcomes");

    const auto all_kinds = std::vector<EdgeKind>{
        EdgeKind::Po, EdgeKind::Rf, EdgeKind::Ws, EdgeKind::Fr};

    for (const auto &ws : enumerateWsOrders(test)) {
        if (!rmwAtomicityHolds(test, outcome, ws))
            continue;
        const HbGraph graph(test, outcome, ws);

        if (model == MemoryModel::SC) {
            if (graph.acyclic(all_kinds))
                return true;
            continue;
        }

        // TSO / PSO: uniproc (SC per location) ...
        HbGraph::AcyclicSpec uniproc;
        uniproc.kinds = all_kinds;
        uniproc.poSameLocationOnly = true;
        if (!graph.acyclic(uniproc))
            continue;

        // ... and the global-happens-before condition; PSO
        // additionally drops unfenced store->store program order.
        HbGraph::AcyclicSpec ghb;
        ghb.kinds = all_kinds;
        ghb.excludeWrPo = true;
        ghb.excludeWwPo = model == MemoryModel::PSO;
        ghb.externalRfOnly = true;
        if (graph.acyclic(ghb))
            return true;
    }
    return false;
}

} // namespace perple::model
