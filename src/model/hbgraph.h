/**
 * @file
 * Happens-before graphs over litmus-test memory operations.
 *
 * Vertices are the memory operations (stores and loads) of one iteration
 * of a test; edges carry the four relation kinds of Section II-B.2:
 * program order (po), read-from (rf), write serialization (ws) and
 * from-read (fr). The graph is the object the paper's Converter reasons
 * about when mapping outcomes to perpetual outcomes, and the axiomatic
 * checker evaluates acyclicity conditions over it.
 */

#ifndef PERPLE_MODEL_HBGRAPH_H
#define PERPLE_MODEL_HBGRAPH_H

#include <optional>
#include <string>
#include <vector>

#include "litmus/outcome.h"
#include "litmus/test.h"

namespace perple::model
{

/** Identifies one memory operation of the test. */
struct OpRef
{
    litmus::ThreadId thread = -1;
    int index = -1; ///< Instruction index within the thread.

    bool
    operator==(const OpRef &other) const
    {
        return thread == other.thread && index == other.index;
    }

    bool
    operator<(const OpRef &other) const
    {
        if (thread != other.thread)
            return thread < other.thread;
        return index < other.index;
    }
};

/** Happens-before edge kinds. */
enum class EdgeKind
{
    Po, ///< Program order within a thread.
    Rf, ///< Store to the load reading its value.
    Ws, ///< Write serialization between same-location stores.
    Fr, ///< Load to a store ws-after the store it read.
};

/** One happens-before edge. */
struct HbEdge
{
    OpRef from;
    OpRef to;
    EdgeKind kind;
};

/**
 * A happens-before graph for one candidate execution.
 *
 * The rf component is derived from an outcome (each constrained
 * register's value identifies its writer; value 0 identifies the
 * initializing store, which is not a vertex, so reading 0 contributes fr
 * edges to every store of the location instead of an rf edge). The ws
 * component must be supplied as a total order per location.
 */
class HbGraph
{
  public:
    /**
     * Build the graph for @p test under @p outcome and @p ws_orders.
     *
     * @param test The test; must be validated.
     * @param outcome Register conditions to witness; loads without a
     *        condition contribute no rf/fr edges.
     * @param ws_orders For each location, the assumed total store order
     *        as a sequence of OpRefs (may be empty for single-store or
     *        store-free locations).
     */
    HbGraph(const litmus::Test &test, const litmus::Outcome &outcome,
            const std::vector<std::vector<OpRef>> &ws_orders);

    /** All edges, in insertion order. */
    const std::vector<HbEdge> &edges() const { return edges_; }

    /** Edges of one kind. */
    std::vector<HbEdge> edgesOfKind(EdgeKind kind) const;

    /** Which edges participate in an acyclicity check. */
    struct AcyclicSpec
    {
        /** Edge kinds to include. */
        std::vector<EdgeKind> kinds;

        /**
         * Drop po edges from a store to a load (the TSO W->R
         * relaxation) unless an MFENCE separates them.
         */
        bool excludeWrPo = false;

        /**
         * Drop po edges between stores to *different* locations (the
         * additional PSO W->W relaxation) unless an MFENCE separates
         * them; same-location store pairs stay ordered (coherence).
         */
        bool excludeWwPo = false;

        /** Keep only po edges between same-location operations. */
        bool poSameLocationOnly = false;

        /** Keep only rf edges that cross threads (rfe). */
        bool externalRfOnly = false;
    };

    /** True iff the subgraph selected by @p spec is acyclic. */
    bool acyclic(const AcyclicSpec &spec) const;

    /** Convenience overload including @p kinds with default filters. */
    bool
    acyclic(const std::vector<EdgeKind> &kinds) const
    {
        return acyclic(AcyclicSpec{kinds, false, false, false});
    }

    /** Graphviz dot rendering, for documentation and debugging. */
    std::string toDot() const;

  private:
    bool hasFenceBetween(OpRef from, OpRef to) const;

    const litmus::Test &test_;
    std::vector<OpRef> vertices_;
    std::vector<HbEdge> edges_;
};

/**
 * Enumerate all per-location total store orders of @p test.
 *
 * The result is the cartesian product over locations of the
 * permutations of that location's stores; each element is indexed by
 * LocationId and usable as HbGraph's ws_orders argument.
 */
std::vector<std::vector<std::vector<OpRef>>>
enumerateWsOrders(const litmus::Test &test);

/**
 * Enumerate all total orders of the test's fences that are consistent
 * with program order (every fence is an SC fence under RA; the orders
 * are the candidate positions of the fences in the model's global SC
 * order). A fence-free test yields one empty order.
 */
std::vector<std::vector<OpRef>>
enumerateScFenceOrders(const litmus::Test &test);

} // namespace perple::model

#endif // PERPLE_MODEL_HBGRAPH_H
