#include "model/operational.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <string>

#include "common/error.h"
#include "common/strings.h"

namespace perple::model
{

namespace
{

using litmus::Instruction;
using litmus::LocationId;
using litmus::OpKind;
using litmus::Test;
using litmus::ThreadId;
using litmus::Value;

/** One buffered store awaiting drain. */
struct BufferedStore
{
    LocationId loc;
    Value value;

    bool
    operator==(const BufferedStore &other) const
    {
        return loc == other.loc && value == other.value;
    }
};

/** Complete machine state during enumeration. */
struct MachineState
{
    std::vector<int> pc;
    std::vector<std::deque<BufferedStore>> buffers;
    std::vector<Value> memory;
    std::vector<std::vector<Value>> regs;

    std::string
    key() const
    {
        std::string out;
        for (std::size_t t = 0; t < pc.size(); ++t) {
            out += format("p%d|", pc[t]);
            for (const auto &entry : buffers[t])
                out += format("b%d=%lld|", entry.loc,
                              static_cast<long long>(entry.value));
            out += ";";
        }
        for (const auto v : memory)
            out += format("m%lld|", static_cast<long long>(v));
        for (const auto &thread_regs : regs)
            for (const auto v : thread_regs)
                out += format("r%lld|", static_cast<long long>(v));
        return out;
    }
};

/** DFS enumeration context. */
class Enumerator
{
  public:
    Enumerator(const Test &test, MemoryModel model)
        : test_(test), model_(model)
    {}

    std::vector<FinalState>
    run()
    {
        MachineState initial;
        const auto num_threads =
            static_cast<std::size_t>(test_.numThreads());
        initial.pc.assign(num_threads, 0);
        initial.buffers.assign(num_threads, {});
        initial.memory.assign(
            static_cast<std::size_t>(test_.numLocations()), 0);
        initial.regs.resize(num_threads);
        for (std::size_t t = 0; t < num_threads; ++t)
            initial.regs[t].assign(test_.threads[t].registerNames.size(),
                                   0);
        explore(initial);

        std::vector<FinalState> result(finals_.begin(), finals_.end());
        return result;
    }

  private:
    bool
    done(const MachineState &state) const
    {
        for (std::size_t t = 0; t < state.pc.size(); ++t) {
            if (state.pc[t] <
                static_cast<int>(test_.threads[t].instructions.size()))
                return false;
            if (!state.buffers[t].empty())
                return false;
        }
        return true;
    }

    void
    explore(const MachineState &state)
    {
        if (!visited_.insert(state.key()).second)
            return;

        if (done(state)) {
            FinalState fs;
            fs.regs = state.regs;
            fs.memory = state.memory;
            finals_.insert(std::move(fs));
            return;
        }

        for (ThreadId t = 0; t < test_.numThreads(); ++t) {
            stepInstruction(state, t);
            if (model_ != MemoryModel::SC)
                stepDrain(state, t);
        }
    }

    /** Try to execute the next instruction of thread @p t. */
    void
    stepInstruction(const MachineState &state, ThreadId t)
    {
        const auto ut = static_cast<std::size_t>(t);
        const auto &instructions = test_.threads[ut].instructions;
        const int pc = state.pc[ut];
        if (pc >= static_cast<int>(instructions.size()))
            return;
        const Instruction &instr =
            instructions[static_cast<std::size_t>(pc)];

        MachineState next = state;
        next.pc[ut] = pc + 1;

        switch (instr.kind) {
          case OpKind::Store:
            if (model_ != MemoryModel::SC) {
                next.buffers[ut].push_back({instr.loc, instr.value});
            } else {
                next.memory[static_cast<std::size_t>(instr.loc)] =
                    instr.value;
            }
            break;
          case OpKind::Load: {
            Value loaded =
                state.memory[static_cast<std::size_t>(instr.loc)];
            if (model_ != MemoryModel::SC) {
                // Forward from the newest matching buffered store.
                const auto &buffer = state.buffers[ut];
                for (auto it = buffer.rbegin(); it != buffer.rend();
                     ++it) {
                    if (it->loc == instr.loc) {
                        loaded = it->value;
                        break;
                    }
                }
            }
            next.regs[ut][static_cast<std::size_t>(instr.reg)] = loaded;
            break;
          }
          case OpKind::Fence:
            // MFENCE can only retire once the own buffer is empty; the
            // drain transitions below make progress toward that.
            if (model_ != MemoryModel::SC &&
                !state.buffers[ut].empty())
                return;
            break;
          case OpKind::Rmw:
            // Locked instruction: drains the own buffer first (full
            // fence), then the read-modify-write is a single atomic
            // global action.
            if (model_ != MemoryModel::SC &&
                !state.buffers[ut].empty())
                return;
            next.regs[ut][static_cast<std::size_t>(instr.reg)] =
                state.memory[static_cast<std::size_t>(instr.loc)];
            next.memory[static_cast<std::size_t>(instr.loc)] =
                instr.value;
            break;
        }
        explore(next);
    }

    /**
     * Try to drain a buffered store of thread @p t: the oldest under
     * TSO (FIFO), any entry under PSO — except that entries to the
     * same location stay FIFO among themselves (per-location
     * coherence: a thread's same-location stores cannot overtake each
     * other even in PSO).
     */
    void
    stepDrain(const MachineState &state, ThreadId t)
    {
        const auto ut = static_cast<std::size_t>(t);
        const auto &buffer = state.buffers[ut];
        if (buffer.empty())
            return;

        const std::size_t candidates =
            model_ == MemoryModel::PSO ? buffer.size() : 1;
        for (std::size_t i = 0; i < candidates; ++i) {
            // PSO: only the first buffered store to its location may
            // drain (same-location FIFO).
            bool first_to_location = true;
            for (std::size_t j = 0; j < i; ++j) {
                if (buffer[j].loc == buffer[i].loc) {
                    first_to_location = false;
                    break;
                }
            }
            if (!first_to_location)
                continue;
            MachineState next = state;
            const BufferedStore entry = next.buffers[ut]
                [static_cast<std::deque<BufferedStore>::size_type>(i)];
            next.buffers[ut].erase(
                next.buffers[ut].begin() +
                static_cast<std::deque<BufferedStore>::difference_type>(
                    i));
            next.memory[static_cast<std::size_t>(entry.loc)] =
                entry.value;
            explore(next);
        }
    }

    const Test &test_;
    MemoryModel model_;
    std::set<std::string> visited_;
    std::set<FinalState> finals_;
};

/**
 * One store message in a location's modification order (RA machine).
 *
 * Identity is the executing instruction (id = thread * 64 + pc), so a
 * message's value and release-ness are fixed; the view snapshot is
 * execution-dependent and carried here.
 */
struct RaMessage
{
    int id;
    Value value;

    /** Release store/RMW: @c view below is a valid snapshot. */
    bool release;

    /**
     * An RMW read this message; its write is mo-adjacent after it and
     * nothing may ever be inserted between the two.
     */
    bool pinned;

    /** Writer's view at the store, per location: message id or -1. */
    std::vector<int> view;
};

/**
 * The RA view machine: a promising-semantics-style machine without
 * promises (no speculation, so po ∪ rf stays acyclic — no load
 * buffering, matching the axiomatic side's no-thin-air check).
 *
 * Each location holds its messages in modification order; new stores
 * may be inserted at any position strictly after the writing thread's
 * current view of the location (this is what admits RA behaviors such
 * as 2+2W). Threads advance their view on every access; acquire loads
 * additionally join the message's attached view when the message was a
 * release. SC fences join through a global fence view. RMWs read a
 * message and insert their write immediately after it, permanently
 * reserving that adjacency.
 */
class RaEnumerator
{
  public:
    explicit RaEnumerator(const Test &test) : test_(test) {}

    std::vector<FinalState>
    run()
    {
        RaState initial;
        const auto num_threads =
            static_cast<std::size_t>(test_.numThreads());
        const auto num_locs =
            static_cast<std::size_t>(test_.numLocations());
        initial.pc.assign(num_threads, 0);
        initial.regs.resize(num_threads);
        for (std::size_t t = 0; t < num_threads; ++t)
            initial.regs[t].assign(test_.threads[t].registerNames.size(),
                                   0);
        initial.views.assign(num_threads,
                             std::vector<int>(num_locs, -1));
        initial.scView.assign(num_locs, -1);
        initial.mo.assign(num_locs, {});
        initial.initPinned.assign(num_locs, 0);
        explore(initial);

        std::vector<FinalState> result(finals_.begin(), finals_.end());
        return result;
    }

  private:
    struct RaState
    {
        std::vector<int> pc;
        std::vector<std::vector<Value>> regs;
        std::vector<std::vector<int>> views; ///< [thread][loc] -> id.
        std::vector<int> scView;             ///< [loc] -> id or -1.
        std::vector<std::vector<RaMessage>> mo; ///< [loc], mo order.
        std::vector<char> initPinned; ///< [loc]: RMW consumed init.

        std::string
        key() const
        {
            std::string out;
            for (std::size_t t = 0; t < pc.size(); ++t) {
                out += format("p%d|", pc[t]);
                for (const auto v : regs[t])
                    out += format("r%lld|", static_cast<long long>(v));
                for (const auto id : views[t])
                    out += format("v%d|", id);
                out += ";";
            }
            for (const auto id : scView)
                out += format("s%d|", id);
            for (std::size_t l = 0; l < mo.size(); ++l) {
                out += initPinned[l] ? "I" : "i";
                for (const auto &msg : mo[l]) {
                    out += format("m%d%c", msg.id,
                                  msg.pinned ? '!' : '.');
                    for (const auto id : msg.view)
                        out += format("w%d|", id);
                }
                out += ";";
            }
            return out;
        }
    };

    /** Position of message @p id in @p list; -1 for the init value. */
    static int
    posOf(const std::vector<RaMessage> &list, int id)
    {
        if (id < 0)
            return -1;
        for (std::size_t i = 0; i < list.size(); ++i)
            if (list[i].id == id)
                return static_cast<int>(i);
        return -1;
    }

    /** Pointwise join: keep whichever message is later in mo. */
    void
    joinInto(const RaState &state, std::vector<int> &target,
             const std::vector<int> &source) const
    {
        for (std::size_t l = 0; l < target.size(); ++l) {
            if (posOf(state.mo[l], source[l]) >
                posOf(state.mo[l], target[l]))
                target[l] = source[l];
        }
    }

    bool
    done(const RaState &state) const
    {
        for (std::size_t t = 0; t < state.pc.size(); ++t)
            if (state.pc[t] <
                static_cast<int>(test_.threads[t].instructions.size()))
                return false;
        return true;
    }

    void
    explore(const RaState &state)
    {
        if (!visited_.insert(state.key()).second)
            return;

        if (done(state)) {
            FinalState fs;
            fs.regs = state.regs;
            for (const auto &messages : state.mo)
                fs.memory.push_back(
                    messages.empty() ? 0 : messages.back().value);
            finals_.insert(std::move(fs));
            return;
        }

        for (ThreadId t = 0; t < test_.numThreads(); ++t)
            stepInstruction(state, t);
    }

    void
    stepInstruction(const RaState &state, ThreadId t)
    {
        const auto ut = static_cast<std::size_t>(t);
        const auto &instructions = test_.threads[ut].instructions;
        const int pc = state.pc[ut];
        if (pc >= static_cast<int>(instructions.size()))
            return;
        const Instruction &instr =
            instructions[static_cast<std::size_t>(pc)];
        const int new_id = static_cast<int>(t) * 64 + pc;

        switch (instr.kind) {
          case OpKind::Load:
            forEachReadable(state, t, instr, [&](int msg_pos) {
                RaState next = state;
                next.pc[ut] = pc + 1;
                readMessage(next, t, instr, msg_pos);
                explore(next);
            });
            break;
          case OpKind::Store: {
            const auto ul = static_cast<std::size_t>(instr.loc);
            const auto &messages = state.mo[ul];
            const int min_pos =
                posOf(messages, state.views[ut][ul]) + 1;
            for (int pos = min_pos;
                 pos <= static_cast<int>(messages.size()); ++pos) {
                if (!insertAllowed(state, instr.loc, pos))
                    continue;
                RaState next = state;
                next.pc[ut] = pc + 1;
                insertMessage(next, t, instr, new_id, pos);
                explore(next);
            }
            break;
          }
          case OpKind::Rmw:
            forEachReadable(state, t, instr, [&](int msg_pos) {
                const auto ul = static_cast<std::size_t>(instr.loc);
                // Atomicity: the read message must not already feed
                // another RMW — our write goes immediately after it.
                if (msg_pos < 0) {
                    if (state.initPinned[ul])
                        return;
                } else if (state.mo[ul]
                               [static_cast<std::size_t>(msg_pos)]
                                   .pinned) {
                    return;
                }
                RaState next = state;
                next.pc[ut] = pc + 1;
                readMessage(next, t, instr, msg_pos);
                insertMessage(next, t, instr, new_id, msg_pos + 1);
                if (msg_pos < 0)
                    next.initPinned[ul] = 1;
                else
                    next.mo[ul][static_cast<std::size_t>(msg_pos)]
                        .pinned = true;
                explore(next);
            });
            break;
          case OpKind::Fence: {
            // Every fence is an SC fence under RA: join the thread
            // view with the global fence view in both directions.
            RaState next = state;
            next.pc[ut] = pc + 1;
            joinInto(next, next.views[ut], next.scView);
            next.scView = next.views[ut];
            explore(next);
            break;
          }
        }
    }

    /**
     * Invoke @p fn for every message of the instruction's location the
     * thread may read: everything at or after its view, with position
     * -1 standing for the initial value.
     */
    template <typename Fn>
    void
    forEachReadable(const RaState &state, ThreadId t,
                    const Instruction &instr, Fn fn) const
    {
        const auto ut = static_cast<std::size_t>(t);
        const auto ul = static_cast<std::size_t>(instr.loc);
        const auto &messages = state.mo[ul];
        const int view_pos = posOf(messages, state.views[ut][ul]);
        for (int pos = view_pos;
             pos < static_cast<int>(messages.size()); ++pos)
            fn(pos);
    }

    /**
     * Read the message at @p msg_pos (or the init value when -1) into
     * the instruction's register, advancing the reader's view and
     * performing the acquire join when applicable.
     */
    void
    readMessage(RaState &next, ThreadId t, const Instruction &instr,
                int msg_pos) const
    {
        const auto ut = static_cast<std::size_t>(t);
        const auto ul = static_cast<std::size_t>(instr.loc);
        if (msg_pos < 0) {
            next.regs[ut][static_cast<std::size_t>(instr.reg)] = 0;
            return;
        }
        const RaMessage &msg =
            next.mo[ul][static_cast<std::size_t>(msg_pos)];
        next.regs[ut][static_cast<std::size_t>(instr.reg)] = msg.value;
        next.views[ut][ul] = msg.id;
        if (instr.raAcquire() && msg.release) {
            const std::vector<int> msg_view = msg.view;
            joinInto(next, next.views[ut], msg_view);
        }
    }

    /** True when inserting at @p pos keeps every RMW pair adjacent. */
    bool
    insertAllowed(const RaState &state, LocationId loc, int pos) const
    {
        const auto ul = static_cast<std::size_t>(loc);
        if (pos == 0)
            return !state.initPinned[ul];
        return !state.mo[ul][static_cast<std::size_t>(pos - 1)].pinned;
    }

    /**
     * Insert the instruction's store message at mo position @p pos,
     * advancing the writer's view and snapshotting it into the message
     * when the write is a release.
     */
    void
    insertMessage(RaState &next, ThreadId t, const Instruction &instr,
                  int id, int pos) const
    {
        const auto ut = static_cast<std::size_t>(t);
        const auto ul = static_cast<std::size_t>(instr.loc);
        next.views[ut][ul] = id;
        RaMessage msg;
        msg.id = id;
        msg.value = instr.value;
        msg.release = instr.raRelease();
        msg.pinned = false;
        if (msg.release)
            msg.view = next.views[ut];
        next.mo[ul].insert(next.mo[ul].begin() + pos, std::move(msg));
    }

    const Test &test_;
    std::set<std::string> visited_;
    std::set<FinalState> finals_;
};

} // namespace

const char *
memoryModelName(MemoryModel model)
{
    switch (model) {
      case MemoryModel::SC: return "SC";
      case MemoryModel::TSO: return "TSO";
      case MemoryModel::PSO: return "PSO";
      case MemoryModel::RA: return "RA";
    }
    return "?";
}

MemoryModel
memoryModelFromName(const std::string &name)
{
    const std::string lower = toLower(name);
    if (lower == "sc")
        return MemoryModel::SC;
    if (lower == "tso")
        return MemoryModel::TSO;
    if (lower == "pso")
        return MemoryModel::PSO;
    if (lower == "ra")
        return MemoryModel::RA;
    fatal("unknown memory model '" + name +
          "' (expected sc, tso, pso or ra)");
}

std::vector<FinalState>
enumerateFinalStates(const litmus::Test &test, MemoryModel model)
{
    if (model == MemoryModel::RA) {
        RaEnumerator enumerator(test);
        return enumerator.run();
    }
    Enumerator enumerator(test, model);
    return enumerator.run();
}

bool
allows(const litmus::Test &test, const litmus::Outcome &outcome,
       MemoryModel model)
{
    for (const auto &fs : enumerateFinalStates(test, model))
        if (fs.satisfies(outcome))
            return true;
    return false;
}

std::vector<litmus::Outcome>
allowedRegisterOutcomes(const litmus::Test &test, MemoryModel model)
{
    const auto finals = enumerateFinalStates(test, model);
    std::vector<litmus::Outcome> allowed;
    for (const auto &outcome : litmus::enumerateRegisterOutcomes(test)) {
        for (const auto &fs : finals) {
            if (fs.satisfies(outcome)) {
                allowed.push_back(outcome);
                break;
            }
        }
    }
    return allowed;
}

} // namespace perple::model
