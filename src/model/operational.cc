#include "model/operational.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <string>

#include "common/error.h"
#include "common/strings.h"

namespace perple::model
{

namespace
{

using litmus::Instruction;
using litmus::LocationId;
using litmus::OpKind;
using litmus::Test;
using litmus::ThreadId;
using litmus::Value;

/** One buffered store awaiting drain. */
struct BufferedStore
{
    LocationId loc;
    Value value;

    bool
    operator==(const BufferedStore &other) const
    {
        return loc == other.loc && value == other.value;
    }
};

/** Complete machine state during enumeration. */
struct MachineState
{
    std::vector<int> pc;
    std::vector<std::deque<BufferedStore>> buffers;
    std::vector<Value> memory;
    std::vector<std::vector<Value>> regs;

    std::string
    key() const
    {
        std::string out;
        for (std::size_t t = 0; t < pc.size(); ++t) {
            out += format("p%d|", pc[t]);
            for (const auto &entry : buffers[t])
                out += format("b%d=%lld|", entry.loc,
                              static_cast<long long>(entry.value));
            out += ";";
        }
        for (const auto v : memory)
            out += format("m%lld|", static_cast<long long>(v));
        for (const auto &thread_regs : regs)
            for (const auto v : thread_regs)
                out += format("r%lld|", static_cast<long long>(v));
        return out;
    }
};

/** DFS enumeration context. */
class Enumerator
{
  public:
    Enumerator(const Test &test, MemoryModel model)
        : test_(test), model_(model)
    {}

    std::vector<FinalState>
    run()
    {
        MachineState initial;
        const auto num_threads =
            static_cast<std::size_t>(test_.numThreads());
        initial.pc.assign(num_threads, 0);
        initial.buffers.assign(num_threads, {});
        initial.memory.assign(
            static_cast<std::size_t>(test_.numLocations()), 0);
        initial.regs.resize(num_threads);
        for (std::size_t t = 0; t < num_threads; ++t)
            initial.regs[t].assign(test_.threads[t].registerNames.size(),
                                   0);
        explore(initial);

        std::vector<FinalState> result(finals_.begin(), finals_.end());
        return result;
    }

  private:
    bool
    done(const MachineState &state) const
    {
        for (std::size_t t = 0; t < state.pc.size(); ++t) {
            if (state.pc[t] <
                static_cast<int>(test_.threads[t].instructions.size()))
                return false;
            if (!state.buffers[t].empty())
                return false;
        }
        return true;
    }

    void
    explore(const MachineState &state)
    {
        if (!visited_.insert(state.key()).second)
            return;

        if (done(state)) {
            FinalState fs;
            fs.regs = state.regs;
            fs.memory = state.memory;
            finals_.insert(std::move(fs));
            return;
        }

        for (ThreadId t = 0; t < test_.numThreads(); ++t) {
            stepInstruction(state, t);
            if (model_ != MemoryModel::SC)
                stepDrain(state, t);
        }
    }

    /** Try to execute the next instruction of thread @p t. */
    void
    stepInstruction(const MachineState &state, ThreadId t)
    {
        const auto ut = static_cast<std::size_t>(t);
        const auto &instructions = test_.threads[ut].instructions;
        const int pc = state.pc[ut];
        if (pc >= static_cast<int>(instructions.size()))
            return;
        const Instruction &instr =
            instructions[static_cast<std::size_t>(pc)];

        MachineState next = state;
        next.pc[ut] = pc + 1;

        switch (instr.kind) {
          case OpKind::Store:
            if (model_ != MemoryModel::SC) {
                next.buffers[ut].push_back({instr.loc, instr.value});
            } else {
                next.memory[static_cast<std::size_t>(instr.loc)] =
                    instr.value;
            }
            break;
          case OpKind::Load: {
            Value loaded =
                state.memory[static_cast<std::size_t>(instr.loc)];
            if (model_ != MemoryModel::SC) {
                // Forward from the newest matching buffered store.
                const auto &buffer = state.buffers[ut];
                for (auto it = buffer.rbegin(); it != buffer.rend();
                     ++it) {
                    if (it->loc == instr.loc) {
                        loaded = it->value;
                        break;
                    }
                }
            }
            next.regs[ut][static_cast<std::size_t>(instr.reg)] = loaded;
            break;
          }
          case OpKind::Fence:
            // MFENCE can only retire once the own buffer is empty; the
            // drain transitions below make progress toward that.
            if (model_ != MemoryModel::SC &&
                !state.buffers[ut].empty())
                return;
            break;
          case OpKind::Rmw:
            // Locked instruction: drains the own buffer first (full
            // fence), then the read-modify-write is a single atomic
            // global action.
            if (model_ != MemoryModel::SC &&
                !state.buffers[ut].empty())
                return;
            next.regs[ut][static_cast<std::size_t>(instr.reg)] =
                state.memory[static_cast<std::size_t>(instr.loc)];
            next.memory[static_cast<std::size_t>(instr.loc)] =
                instr.value;
            break;
        }
        explore(next);
    }

    /**
     * Try to drain a buffered store of thread @p t: the oldest under
     * TSO (FIFO), any entry under PSO — except that entries to the
     * same location stay FIFO among themselves (per-location
     * coherence: a thread's same-location stores cannot overtake each
     * other even in PSO).
     */
    void
    stepDrain(const MachineState &state, ThreadId t)
    {
        const auto ut = static_cast<std::size_t>(t);
        const auto &buffer = state.buffers[ut];
        if (buffer.empty())
            return;

        const std::size_t candidates =
            model_ == MemoryModel::PSO ? buffer.size() : 1;
        for (std::size_t i = 0; i < candidates; ++i) {
            // PSO: only the first buffered store to its location may
            // drain (same-location FIFO).
            bool first_to_location = true;
            for (std::size_t j = 0; j < i; ++j) {
                if (buffer[j].loc == buffer[i].loc) {
                    first_to_location = false;
                    break;
                }
            }
            if (!first_to_location)
                continue;
            MachineState next = state;
            const BufferedStore entry = next.buffers[ut]
                [static_cast<std::deque<BufferedStore>::size_type>(i)];
            next.buffers[ut].erase(
                next.buffers[ut].begin() +
                static_cast<std::deque<BufferedStore>::difference_type>(
                    i));
            next.memory[static_cast<std::size_t>(entry.loc)] =
                entry.value;
            explore(next);
        }
    }

    const Test &test_;
    MemoryModel model_;
    std::set<std::string> visited_;
    std::set<FinalState> finals_;
};

} // namespace

const char *
memoryModelName(MemoryModel model)
{
    switch (model) {
      case MemoryModel::SC: return "SC";
      case MemoryModel::TSO: return "TSO";
      case MemoryModel::PSO: return "PSO";
    }
    return "?";
}

std::vector<FinalState>
enumerateFinalStates(const litmus::Test &test, MemoryModel model)
{
    Enumerator enumerator(test, model);
    return enumerator.run();
}

bool
allows(const litmus::Test &test, const litmus::Outcome &outcome,
       MemoryModel model)
{
    for (const auto &fs : enumerateFinalStates(test, model))
        if (fs.satisfies(outcome))
            return true;
    return false;
}

std::vector<litmus::Outcome>
allowedRegisterOutcomes(const litmus::Test &test, MemoryModel model)
{
    const auto finals = enumerateFinalStates(test, model);
    std::vector<litmus::Outcome> allowed;
    for (const auto &outcome : litmus::enumerateRegisterOutcomes(test)) {
        for (const auto &fs : finals) {
            if (fs.satisfies(outcome)) {
                allowed.push_back(outcome);
                break;
            }
        }
    }
    return allowed;
}

} // namespace perple::model
