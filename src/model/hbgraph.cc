#include "model/hbgraph.h"

#include <algorithm>
#include <map>

#include "common/error.h"
#include "common/strings.h"
#include "litmus/writer.h"

namespace perple::model
{

using litmus::Instruction;
using litmus::LocationId;
using litmus::OpKind;
using litmus::Test;
using litmus::ThreadId;

namespace
{

const Instruction &
instructionAt(const Test &test, OpRef op)
{
    return test.threads[static_cast<std::size_t>(op.thread)]
        .instructions[static_cast<std::size_t>(op.index)];
}

} // namespace

HbGraph::HbGraph(const litmus::Test &test,
                 const litmus::Outcome &outcome,
                 const std::vector<std::vector<OpRef>> &ws_orders)
    : test_(test)
{
    // Vertices: every memory operation, in (thread, index) order.
    for (ThreadId t = 0; t < test.numThreads(); ++t) {
        const auto &instructions =
            test.threads[static_cast<std::size_t>(t)].instructions;
        for (std::size_t i = 0; i < instructions.size(); ++i)
            if (!instructions[i].isFence())
                vertices_.push_back({t, static_cast<int>(i)});
    }

    // po: all ordered pairs of memory operations within a thread, so
    // that selectively dropping store->load pairs (the TSO relaxation)
    // preserves the remaining transitive orderings.
    for (std::size_t a = 0; a < vertices_.size(); ++a) {
        for (std::size_t b = a + 1; b < vertices_.size(); ++b) {
            if (vertices_[a].thread != vertices_[b].thread)
                continue;
            edges_.push_back({vertices_[a], vertices_[b], EdgeKind::Po});
        }
    }

    // ws: chain each location's assumed total store order.
    for (const auto &order : ws_orders)
        for (std::size_t i = 0; i + 1 < order.size(); ++i)
            edges_.push_back({order[i], order[i + 1], EdgeKind::Ws});

    // rf and fr, derived from the outcome's register conditions.
    for (const auto &cond : outcome.conditions) {
        if (cond.kind != litmus::Condition::Kind::Register)
            continue;
        const int load_index =
            test.loadIndexForRegister(cond.thread, cond.reg);
        checkUser(load_index >= 0,
                  "outcome condition references a register that is "
                  "never loaded");
        const OpRef load{cond.thread, load_index};
        const LocationId loc = instructionAt(test, load).loc;

        if (cond.value == 0) {
            // Reading the initial value: the load is fr-before every
            // store to the location. An Rmw's read precedes its own
            // write by construction, so no self-edge is generated.
            for (const auto &[store_thread, store_index] :
                 test.storesTo(loc)) {
                const OpRef store{store_thread, store_index};
                if (store == load)
                    continue;
                edges_.push_back({load, store, EdgeKind::Fr});
            }
            continue;
        }

        ThreadId store_thread = -1;
        int store_index = -1;
        checkUser(test.findStoreOf(loc, cond.value, store_thread,
                                   store_index),
                  "outcome condition value has no matching store");
        const OpRef store{store_thread, store_index};
        edges_.push_back({store, load, EdgeKind::Rf});

        // fr: the load is before every store that ws-follows the one
        // it read.
        const auto uloc = static_cast<std::size_t>(loc);
        if (uloc < ws_orders.size()) {
            const auto &order = ws_orders[uloc];
            const auto it =
                std::find(order.begin(), order.end(), store);
            if (it != order.end()) {
                for (auto later = std::next(it); later != order.end();
                     ++later) {
                    if (*later == load) // Rmw self-edge; see above.
                        continue;
                    edges_.push_back({load, *later, EdgeKind::Fr});
                }
            }
        }
    }
}

std::vector<HbEdge>
HbGraph::edgesOfKind(EdgeKind kind) const
{
    std::vector<HbEdge> out;
    for (const auto &edge : edges_)
        if (edge.kind == kind)
            out.push_back(edge);
    return out;
}

bool
HbGraph::hasFenceBetween(OpRef from, OpRef to) const
{
    if (from.thread != to.thread)
        return false;
    const auto &instructions =
        test_.threads[static_cast<std::size_t>(from.thread)]
            .instructions;
    for (int i = from.index + 1; i < to.index; ++i)
        if (instructions[static_cast<std::size_t>(i)].ordersLikeFence())
            return true;
    return false;
}

bool
HbGraph::acyclic(const AcyclicSpec &spec) const
{
    std::map<OpRef, std::size_t> index;
    for (std::size_t i = 0; i < vertices_.size(); ++i)
        index[vertices_[i]] = i;

    std::vector<std::vector<std::size_t>> adjacency(vertices_.size());
    for (const auto &edge : edges_) {
        if (std::find(spec.kinds.begin(), spec.kinds.end(), edge.kind) ==
            spec.kinds.end())
            continue;
        const auto &from = instructionAt(test_, edge.from);
        const auto &to = instructionAt(test_, edge.to);
        if (edge.kind == EdgeKind::Po) {
            if (spec.excludeWrPo && from.isStore() && to.isLoad() &&
                !hasFenceBetween(edge.from, edge.to))
                continue;
            if (spec.excludeWwPo && from.isStore() && to.isStore() &&
                from.loc != to.loc &&
                !hasFenceBetween(edge.from, edge.to))
                continue;
            if (spec.poSameLocationOnly && from.loc != to.loc)
                continue;
        }
        // Internal rf is excluded from the global order because store
        // forwarding satisfies the load before the store commits —
        // but a locked Rmw reads straight from memory (its buffer is
        // drained), so rf into an Rmw is always globally ordered.
        if (edge.kind == EdgeKind::Rf && spec.externalRfOnly &&
            edge.from.thread == edge.to.thread && !to.isRmw())
            continue;
        adjacency[index.at(edge.from)].push_back(index.at(edge.to));
    }

    // Iterative three-color DFS.
    enum class Color { White, Gray, Black };
    std::vector<Color> color(vertices_.size(), Color::White);
    for (std::size_t root = 0; root < vertices_.size(); ++root) {
        if (color[root] != Color::White)
            continue;
        std::vector<std::pair<std::size_t, std::size_t>> stack;
        stack.emplace_back(root, 0);
        color[root] = Color::Gray;
        while (!stack.empty()) {
            auto &[node, next_child] = stack.back();
            if (next_child < adjacency[node].size()) {
                const std::size_t child = adjacency[node][next_child++];
                if (color[child] == Color::Gray)
                    return false;
                if (color[child] == Color::White) {
                    color[child] = Color::Gray;
                    stack.emplace_back(child, 0);
                }
            } else {
                color[node] = Color::Black;
                stack.pop_back();
            }
        }
    }
    return true;
}

std::string
HbGraph::toDot() const
{
    std::string out = "digraph hb {\n";
    const auto nodeName = [&](OpRef op) {
        return format("t%d_i%d", op.thread, op.index);
    };
    for (const auto &v : vertices_) {
        const auto &instr = instructionAt(test_, v);
        out += format(
            "  %s [label=\"%s\"];\n", nodeName(v).c_str(),
            litmus::instructionToString(test_, v.thread, instr).c_str());
    }
    const auto kindName = [](EdgeKind kind) {
        switch (kind) {
          case EdgeKind::Po: return "po";
          case EdgeKind::Rf: return "rf";
          case EdgeKind::Ws: return "ws";
          case EdgeKind::Fr: return "fr";
        }
        return "?";
    };
    for (const auto &edge : edges_) {
        out += format("  %s -> %s [label=\"%s\"];\n",
                      nodeName(edge.from).c_str(),
                      nodeName(edge.to).c_str(), kindName(edge.kind));
    }
    out += "}\n";
    return out;
}

std::vector<std::vector<std::vector<OpRef>>>
enumerateWsOrders(const litmus::Test &test)
{
    // Per location, all permutations of its stores.
    std::vector<std::vector<std::vector<OpRef>>> per_location;
    for (LocationId loc = 0; loc < test.numLocations(); ++loc) {
        std::vector<OpRef> stores;
        for (const auto &[thread, index] : test.storesTo(loc))
            stores.push_back({thread, index});
        std::sort(stores.begin(), stores.end());
        std::vector<std::vector<OpRef>> permutations;
        do {
            permutations.push_back(stores);
        } while (std::next_permutation(stores.begin(), stores.end()));
        per_location.push_back(std::move(permutations));
    }

    // Cartesian product across locations.
    std::vector<std::vector<std::vector<OpRef>>> result;
    std::vector<std::size_t> odometer(per_location.size(), 0);
    while (true) {
        std::vector<std::vector<OpRef>> combo;
        for (std::size_t loc = 0; loc < per_location.size(); ++loc)
            combo.push_back(per_location[loc][odometer[loc]]);
        result.push_back(std::move(combo));

        std::size_t digit = per_location.size();
        bool advanced = false;
        while (digit > 0) {
            --digit;
            if (++odometer[digit] < per_location[digit].size()) {
                advanced = true;
                break;
            }
            odometer[digit] = 0;
        }
        if (!advanced)
            return result;
    }
}

std::vector<std::vector<OpRef>>
enumerateScFenceOrders(const litmus::Test &test)
{
    std::vector<OpRef> fences;
    for (litmus::ThreadId t = 0; t < test.numThreads(); ++t) {
        const auto &instructions =
            test.threads[static_cast<std::size_t>(t)].instructions;
        for (std::size_t i = 0; i < instructions.size(); ++i)
            if (instructions[i].isFence())
                fences.push_back({t, static_cast<int>(i)});
    }

    std::vector<std::vector<OpRef>> result;
    std::sort(fences.begin(), fences.end());
    do {
        // Keep only orders consistent with program order: a thread's
        // own fences must appear in index order.
        bool consistent = true;
        for (std::size_t i = 0; consistent && i < fences.size(); ++i)
            for (std::size_t j = i + 1; j < fences.size(); ++j)
                if (fences[i].thread == fences[j].thread &&
                    fences[i].index > fences[j].index) {
                    consistent = false;
                    break;
                }
        if (consistent)
            result.push_back(fences);
    } while (std::next_permutation(fences.begin(), fences.end()));
    return result;
}

} // namespace perple::model
