#include "model/final_state.h"

#include "common/strings.h"

namespace perple::model
{

bool
FinalState::satisfies(const litmus::Outcome &outcome) const
{
    for (const auto &cond : outcome.conditions) {
        if (cond.kind == litmus::Condition::Kind::Register) {
            const auto &thread_regs =
                regs[static_cast<std::size_t>(cond.thread)];
            if (thread_regs[static_cast<std::size_t>(cond.reg)] !=
                cond.value)
                return false;
        } else {
            if (memory[static_cast<std::size_t>(cond.loc)] != cond.value)
                return false;
        }
    }
    return true;
}

std::string
FinalState::key() const
{
    std::string out = "r:";
    for (const auto &thread_regs : regs) {
        for (const auto v : thread_regs)
            out += format("%lld,", static_cast<long long>(v));
        out += ";";
    }
    out += "m:";
    for (const auto v : memory)
        out += format("%lld,", static_cast<long long>(v));
    return out;
}

} // namespace perple::model
