/**
 * @file
 * Operational model checking of litmus tests under SC, x86-TSO, PSO and
 * C11 Release-Acquire.
 *
 * This is PerpLE's substitute for the herd simulator used in the paper to
 * classify target outcomes (Table II): an exhaustive enumeration of every
 * interleaving of one test iteration under an abstract machine.
 *
 * The TSO machine is the x86-TSO abstract machine of Owens, Sarkar and
 * Sewell: one FIFO store buffer per hardware thread, loads forward from
 * the newest matching buffered store of the own thread before reading
 * memory, MFENCE blocks until the own buffer has drained, and buffered
 * stores drain to memory one at a time at nondeterministic points. The SC
 * machine is the same without store buffers. PSO relaxes the buffer to
 * drain out of order (same-location FIFO only).
 *
 * The RA machine is a view machine in the style of the promising
 * semantics (without promises): per-location modification orders hold
 * messages, each thread tracks a view (its latest known message per
 * location), release stores attach the writer's view to the message, and
 * acquire loads join the message view into the reader's view. See
 * MemoryModel::RA below for how un-annotated x86 instructions map onto
 * RA accesses.
 */

#ifndef PERPLE_MODEL_OPERATIONAL_H
#define PERPLE_MODEL_OPERATIONAL_H

#include <string>
#include <vector>

#include "litmus/outcome.h"
#include "litmus/test.h"
#include "model/final_state.h"

namespace perple::model
{

/** Memory model selector for the operational enumerator. */
enum class MemoryModel
{
    /** Sequential consistency: no store buffers. */
    SC,

    /**
     * x86-TSO: per-thread FIFO store buffers with forwarding; only the
     * W->R program order is relaxed.
     */
    TSO,

    /**
     * SPARC-style Partial Store Order: like TSO but store buffers
     * drain out of order, additionally relaxing W->W program order
     * (the paper's conclusion: perpetual litmus tests apply to weaker
     * models as well; PSO is the first step down from TSO).
     */
    PSO,

    /**
     * C11 Release-Acquire (with relaxed accesses and SC fences).
     * Instructions are interpreted through their MemoryOrder
     * annotation; un-annotated (Plain) instructions degrade to the
     * weakest access of their kind: Plain loads/stores become relaxed,
     * a Plain MFENCE becomes an SC fence, and a Plain XCHG becomes an
     * acquire-release RMW. The x86 models ignore annotations entirely
     * (sound: every x86 load is an acquire, every x86 store a
     * release).
     */
    RA,
};

/** Human-readable model name ("SC", "TSO", "PSO", "RA"). */
const char *memoryModelName(MemoryModel model);

/**
 * Parse a model name, case-insensitively ("sc", "tso", "pso", "ra").
 *
 * @throws UserError on an unknown name.
 */
MemoryModel memoryModelFromName(const std::string &name);

/**
 * Enumerate every reachable final state of one iteration of @p test.
 *
 * @param test The litmus test; must be validated.
 * @param model Any supported MemoryModel.
 * @return All distinct final states, sorted.
 */
std::vector<FinalState> enumerateFinalStates(const litmus::Test &test,
                                             MemoryModel model);

/**
 * True iff some reachable final state satisfies @p outcome.
 *
 * @param test The litmus test.
 * @param outcome Outcome to check; may include memory conditions.
 * @param model Any supported MemoryModel.
 */
bool allows(const litmus::Test &test, const litmus::Outcome &outcome,
            MemoryModel model);

/**
 * All syntactically possible register outcomes of @p test that are
 * reachable under @p model (the "observable" outcomes of Section II-B).
 */
std::vector<litmus::Outcome>
allowedRegisterOutcomes(const litmus::Test &test, MemoryModel model);

} // namespace perple::model

#endif // PERPLE_MODEL_OPERATIONAL_H
