/**
 * @file
 * Axiomatic memory-model checks over happens-before graphs.
 *
 * This is the second, independent oracle (the first is the operational
 * enumerator in operational.h); the unit tests cross-validate the two on
 * the whole corpus. The formulations are the standard ones:
 *
 *  - SC: some per-location total store order (ws) exists such that
 *    po | rf | ws | fr is acyclic;
 *  - x86-TSO (herd's x86tso.cat shape): some ws exists such that
 *      (a) uniproc: po-loc | rf | ws | fr is acyclic, and
 *      (b) ghb: ppo | implied-fence | rfe | ws | fr is acyclic, where
 *          ppo = po minus store->load pairs and implied-fence restores
 *          store->load pairs separated by MFENCE.
 */

#ifndef PERPLE_MODEL_AXIOMATIC_H
#define PERPLE_MODEL_AXIOMATIC_H

#include "litmus/outcome.h"
#include "litmus/test.h"
#include "model/operational.h"

namespace perple::model
{

/**
 * True iff @p outcome is allowed for @p test under @p model by the
 * axiomatic formulation.
 *
 * Only register conditions participate (memory conditions require
 * final-state reasoning; use the operational checker for those).
 *
 * @param test The test; must be validated.
 * @param outcome Register-condition outcome.
 * @param model SC or TSO.
 */
bool allowsAxiomatic(const litmus::Test &test,
                     const litmus::Outcome &outcome, MemoryModel model);

} // namespace perple::model

#endif // PERPLE_MODEL_AXIOMATIC_H
