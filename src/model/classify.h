/**
 * @file
 * Convenience classification of litmus-test target outcomes.
 */

#ifndef PERPLE_MODEL_CLASSIFY_H
#define PERPLE_MODEL_CLASSIFY_H

#include "litmus/registry.h"
#include "litmus/test.h"
#include "model/operational.h"

namespace perple::model
{

/**
 * Classify the target outcome of @p test under x86-TSO using the
 * operational enumerator (PerpLE's herd substitute; see Table II).
 */
litmus::TsoVerdict classifyTargetTso(const litmus::Test &test);

/** Classify the target outcome of @p test under any supported model. */
litmus::TsoVerdict classifyTarget(const litmus::Test &test,
                                  MemoryModel model);

/**
 * True iff the target outcome of @p test is informative: forbidden
 * under SC, i.e. only reachable through a genuine TSO relaxation
 * (Section II-B: "it cannot occur under SC by simply interleaving").
 */
bool targetDistinguishesFromSc(const litmus::Test &test);

} // namespace perple::model

#endif // PERPLE_MODEL_CLASSIFY_H
