#include "perple/counters.h"

#include <algorithm>

#include "common/error.h"
#include "common/strings.h"
#include "common/thread_pool.h"

namespace perple::core
{

using litmus::ThreadId;
using litmus::Value;

namespace
{

/** Merge per-shard partial counts (shard order; sums commute). */
Counts
mergeCounts(const std::vector<Counts> &partial, std::size_t outcomes)
{
    Counts counts(outcomes, 0);
    for (const Counts &shard : partial)
        for (std::size_t o = 0; o < outcomes; ++o)
            counts[o] += shard[o];
    return counts;
}

} // namespace

// ---------------------------------------------------------------------
// ExhaustiveCounter
// ---------------------------------------------------------------------

ExhaustiveCounter::ExhaustiveCounter(
    const litmus::Test &test, std::vector<PerpetualOutcome> outcomes)
    : frameThreads_(test.loadThreads()), outcomes_(std::move(outcomes))
{
    checkUser(!frameThreads_.empty(),
              "a perpetual test needs at least one load thread");
    for (const auto &outcome : outcomes_)
        checkUser(outcome.numConditions <= 32,
                  "too many conditions in one outcome");
    // Flatten every atom once: existential std::find resolved to a
    // slot index, vector metadata folded into POD records.
    compiled_ = detail::compileOutcomes(outcomes_);
}

void
ExhaustiveCounter::countRange(std::int64_t outer_begin,
                              std::int64_t outer_end,
                              std::int64_t iterations,
                              const RawBufs &bufs, CountMode mode,
                              Counts &counts) const
{
    if (outer_end <= outer_begin)
        return;

    // Frame odometer over the load threads (Algorithm 1's nested
    // loops, for any T_L); the outermost dimension is bounded by the
    // shard's [outer_begin, outer_end), the inner ones by iterations.
    const std::size_t dims = frameThreads_.size();
    std::vector<std::int64_t> frame(dims, 0);
    frame[0] = outer_begin;
    std::vector<std::int64_t> idx_by_thread(bufs.numThreads(), -1);
    const Value *const *raw = bufs.data();

    while (true) {
        for (std::size_t d = 0; d < dims; ++d)
            idx_by_thread[static_cast<std::size_t>(frameThreads_[d])] =
                frame[d];

        for (std::size_t o = 0; o < compiled_.size(); ++o) {
            if (detail::evalCompiledAtoms(compiled_[o],
                                          idx_by_thread.data(),
                                          iterations, raw)) {
                ++counts[o];
                // Algorithm 1: at most one outcome per frame.
                if (mode == CountMode::FirstMatch)
                    break;
            }
        }

        // Advance the odometer, last dimension fastest.
        std::size_t d = dims;
        bool advanced = false;
        while (d > 0) {
            --d;
            const std::int64_t limit =
                d == 0 ? outer_end : iterations;
            if (++frame[d] < limit) {
                advanced = true;
                break;
            }
            frame[d] = 0;
        }
        if (!advanced || frame[0] >= outer_end)
            return;
    }
}

Counts
ExhaustiveCounter::count(std::int64_t iterations, const RawBufs &bufs,
                         CountMode mode, std::size_t threads) const
{
    checkUser(iterations > 0, "COUNT needs a positive iteration count");
    const std::size_t workers =
        common::ThreadPool::resolveThreads(threads);

    if (workers <= 1) {
        // Serial reference path: one shard covering every frame.
        Counts counts(outcomes_.size(), 0);
        countRange(0, iterations, iterations, bufs, mode, counts);
        return counts;
    }

    common::ThreadPool &pool = common::ThreadPool::shared(workers);
    std::vector<Counts> partial(pool.numThreads(),
                                Counts(outcomes_.size(), 0));
    // Each outermost index expands into N^{T_L - 1} frames, so a
    // grain of one outer index is already coarse enough.
    pool.parallelFor(
        0, iterations, /*grain=*/1,
        [&](std::size_t shard, std::int64_t begin, std::int64_t end) {
            countRange(begin, end, iterations, bufs, mode,
                       partial[shard]);
        });
    return mergeCounts(partial, outcomes_.size());
}

Counts
ExhaustiveCounter::count(
    std::int64_t iterations,
    const std::vector<std::vector<Value>> &bufs, CountMode mode,
    std::size_t threads) const
{
    return count(iterations, RawBufs(bufs), mode, threads);
}

std::optional<std::vector<std::int64_t>>
ExhaustiveCounter::findFirstFrame(
    std::size_t outcome_index, std::int64_t iterations,
    const std::vector<std::vector<Value>> &bufs) const
{
    checkUser(outcome_index < outcomes_.size(),
              "outcome index out of range");
    const RawBufs raw(bufs);
    const std::size_t dims = frameThreads_.size();
    std::vector<std::int64_t> frame(dims, 0);
    std::vector<std::int64_t> idx_by_thread(raw.numThreads(), -1);
    while (true) {
        for (std::size_t d = 0; d < dims; ++d)
            idx_by_thread[static_cast<std::size_t>(frameThreads_[d])] =
                frame[d];
        if (detail::evalCompiledAtoms(compiled_[outcome_index],
                                      idx_by_thread.data(), iterations,
                                      raw.data()))
            return frame;
        std::size_t d = dims;
        bool advanced = false;
        while (d > 0) {
            --d;
            if (++frame[d] < iterations) {
                advanced = true;
                break;
            }
            frame[d] = 0;
        }
        if (!advanced)
            return std::nullopt;
    }
}

bool
ExhaustiveCounter::evaluate(
    std::size_t outcome_index, const std::vector<std::int64_t> &frame,
    std::int64_t iterations,
    const std::vector<std::vector<Value>> &bufs) const
{
    checkUser(outcome_index < outcomes_.size(),
              "outcome index out of range");
    checkUser(frame.size() == frameThreads_.size(),
              "frame arity does not match the test's load threads");
    const RawBufs raw(bufs);
    std::vector<std::int64_t> idx_by_thread(raw.numThreads(), -1);
    for (std::size_t d = 0; d < frame.size(); ++d)
        idx_by_thread[static_cast<std::size_t>(frameThreads_[d])] =
            frame[d];
    return detail::evalCompiledAtoms(compiled_[outcome_index],
                                     idx_by_thread.data(), iterations,
                                     raw.data());
}

// ---------------------------------------------------------------------
// HeuristicCounter
// ---------------------------------------------------------------------

HeuristicCounter::HeuristicCounter(
    const litmus::Test &test, std::vector<PerpetualOutcome> outcomes)
    : test_(&test),
      frameThreads_(test.loadThreads()),
      outcomes_(std::move(outcomes))
{
    checkUser(!frameThreads_.empty(),
              "a perpetual test needs at least one load thread");

    for (const auto &outcome : outcomes_) {
        checkUser(outcome.numConditions <= 32,
                  "too many conditions in one outcome");

        // Group atoms by condition for substitution planning.
        std::vector<std::vector<const Atom *>> by_condition(
            static_cast<std::size_t>(outcome.numConditions));
        for (const Atom &atom : outcome.atoms)
            by_condition[static_cast<std::size_t>(atom.conditionIndex)]
                .push_back(&atom);

        // Try each frame thread as pivot; keep the plan resolving the
        // most threads without the fallback.
        Plan best;
        std::size_t best_resolved = 0;
        for (const ThreadId pivot : frameThreads_) {
            Plan plan;
            plan.pivot = pivot;
            std::vector<ThreadId> resolved = {pivot};
            std::vector<bool> consumed(by_condition.size(), false);

            bool progress = true;
            while (progress) {
                progress = false;
                for (std::size_t c = 0;
                     c < by_condition.size() && !progress; ++c) {
                    if (consumed[c] || by_condition[c].empty())
                        continue;
                    const Atom *first = by_condition[c].front();
                    const ThreadId load_thread = first->value.thread;
                    if (std::find(resolved.begin(), resolved.end(),
                                  load_thread) == resolved.end())
                        continue;
                    // Find an unresolved frame thread among the
                    // condition's index threads.
                    for (const Atom *atom : by_condition[c]) {
                        if (!atom->indexIsFrame)
                            continue;
                        if (std::find(resolved.begin(), resolved.end(),
                                      atom->indexThread) !=
                            resolved.end())
                            continue;
                        ResolutionStep step;
                        step.targetThread = atom->indexThread;
                        step.conditionIndex = static_cast<int>(c);
                        step.source = first->value;
                        step.sourceThread = load_thread;
                        step.stride = atom->stride;
                        if (first->kind == Atom::Kind::ReadsAtOrAfter) {
                            step.rfDecode = true;
                            step.offset = first->offset;
                        } else {
                            step.rfDecode = false;
                            for (const Atom *sibling : by_condition[c])
                                if (sibling->indexThread ==
                                    atom->indexThread)
                                    step.frOffsets.push_back(
                                        sibling->offset);
                        }
                        plan.steps.push_back(std::move(step));
                        plan.consumedConditions.push_back(
                            static_cast<int>(c));
                        consumed[c] = true;
                        resolved.push_back(atom->indexThread);
                        progress = true;
                        break;
                    }
                }
            }

            const std::size_t resolved_count = resolved.size();
            if (resolved_count > best_resolved ||
                best.pivot < 0) {
                // Fallback: remaining frame threads track the pivot.
                for (const ThreadId t : frameThreads_) {
                    if (std::find(resolved.begin(), resolved.end(),
                                  t) != resolved.end())
                        continue;
                    ResolutionStep step;
                    step.targetThread = t;
                    step.fallback = true;
                    plan.steps.push_back(std::move(step));
                }
                best = std::move(plan);
                best_resolved = resolved_count;
            }
            if (best_resolved == frameThreads_.size())
                break;
        }

        // Fold the skip out of the evaluated atom list once. Only the
        // atoms a substitution satisfies by construction — those whose
        // index thread the step resolved — may be skipped; a consumed
        // `=0` condition has one fr atom per store to the location,
        // and the ones over other threads remain live constraints
        // (dropping them once let COUNTH overcount COUNT; caught by
        // the differential fuzzer).
        best.skipAtoms.assign(outcome.atoms.size(), false);
        for (const ResolutionStep &step : best.steps) {
            if (step.fallback)
                continue;
            for (std::size_t a = 0; a < outcome.atoms.size(); ++a) {
                const Atom &atom = outcome.atoms[a];
                if (atom.conditionIndex == step.conditionIndex &&
                    atom.indexIsFrame &&
                    atom.indexThread == step.targetThread)
                    best.skipAtoms[a] = true;
            }
        }
        best.compiled = detail::compileOutcome(outcome, best.skipAtoms);

        plans_.push_back(std::move(best));
    }
}

ThreadId
HeuristicCounter::pivotThread(std::size_t outcome_index) const
{
    checkUser(outcome_index < plans_.size(),
              "outcome index out of range");
    return plans_[outcome_index].pivot;
}

const std::vector<ResolutionStep> &
HeuristicCounter::planSteps(std::size_t outcome_index) const
{
    checkUser(outcome_index < plans_.size(),
              "outcome index out of range");
    return plans_[outcome_index].steps;
}

const std::vector<int> &
HeuristicCounter::consumedConditions(std::size_t outcome_index) const
{
    checkUser(outcome_index < plans_.size(),
              "outcome index out of range");
    return plans_[outcome_index].consumedConditions;
}

const std::vector<bool> &
HeuristicCounter::skippedAtoms(std::size_t outcome_index) const
{
    checkUser(outcome_index < plans_.size(),
              "outcome index out of range");
    return plans_[outcome_index].skipAtoms;
}

bool
HeuristicCounter::usedFallback() const
{
    for (const auto &plan : plans_)
        for (const auto &step : plan.steps)
            if (step.fallback)
                return true;
    return false;
}

std::string
HeuristicCounter::describePlan(std::size_t outcome_index) const
{
    checkUser(outcome_index < plans_.size(),
              "outcome index out of range");
    const Plan &plan = plans_[outcome_index];
    std::string out =
        format("pivot: n_%d; ", plan.pivot);
    if (plan.steps.empty())
        return out + "no substitutions needed";
    std::vector<std::string> parts;
    for (const auto &step : plan.steps) {
        if (step.fallback) {
            parts.push_back(format("n_%d := n_%d (fallback)",
                                   step.targetThread, plan.pivot));
            continue;
        }
        const std::string src = format(
            "buf_%d[%d*n_%d + %d]", step.source.thread,
            step.source.loadsPerIteration, step.sourceThread,
            step.source.slot);
        if (step.rfDecode) {
            parts.push_back(format(
                "n_%d := (%s - %lld) / %lld (rf decode)",
                step.targetThread, src.c_str(),
                static_cast<long long>(step.offset),
                static_cast<long long>(step.stride)));
        } else {
            parts.push_back(format(
                "n_%d := writer(%s) + 1 (fr decode)",
                step.targetThread, src.c_str()));
        }
    }
    return out + join(parts, "; ");
}

bool
HeuristicCounter::evaluateAt(
    std::size_t o, std::int64_t n, std::int64_t iterations,
    const Value *const *raw,
    std::vector<std::int64_t> &frame_scratch) const
{
    // Batch evaluation is the available == iterations special case of
    // the bounded evaluator (where NeedData is unreachable); sharing
    // the body keeps streaming and batch semantics identical by
    // construction. The extra watermark compares are branch-predicted
    // away in the batch case.
    return evaluateAtBounded(o, n, iterations, iterations, raw,
                             frame_scratch) == BoundedEval::Match;
}

BoundedEval
HeuristicCounter::evaluateAtBounded(
    std::size_t o, std::int64_t n, std::int64_t iterations,
    std::int64_t available, const Value *const *raw,
    std::vector<std::int64_t> &frame_scratch) const
{
    const Plan &plan = plans_[o];

    std::fill(frame_scratch.begin(), frame_scratch.end(), -1);
    frame_scratch[static_cast<std::size_t>(plan.pivot)] = n;

    for (const auto &step : plan.steps) {
        std::int64_t idx;
        if (step.fallback) {
            idx = n;
        } else {
            const std::int64_t src_n = frame_scratch[
                static_cast<std::size_t>(step.sourceThread)];
            // The decode *reads* the source thread's buf at src_n; an
            // index past the watermark means that stripe is not
            // published yet, so the decision must wait. Checked
            // before the read — never touch unwritten memory.
            if (src_n >= available)
                return BoundedEval::NeedData;
            const Value val =
                raw[static_cast<std::size_t>(step.source.thread)]
                   [step.source.loadsPerIteration * src_n +
                    step.source.slot];
            if (step.rfDecode) {
                const std::int64_t d = val - step.offset;
                if (d < 0 || d % step.stride != 0)
                    return BoundedEval::NoMatch;
                idx = d / step.stride;
            } else if (val == 0) {
                // Reading the initial value: the writer precedes the
                // target thread's very first store.
                idx = 0;
            } else {
                idx = -1;
                for (const std::int64_t a : step.frOffsets) {
                    const std::int64_t d = val - a;
                    if (d >= 0 && d % step.stride == 0) {
                        idx = d / step.stride + 1;
                        break;
                    }
                }
                if (idx < 0)
                    return BoundedEval::NoMatch;
            }
        }
        // Order matters for bit-identity: out-of-range indices are
        // NoMatch exactly as in batch, *before* any watermark check —
        // idx in [available, iterations) only defers when the value
        // there is actually read (by a later step's source above, or
        // by the atom scan's frame check below).
        if (idx < 0 || idx >= iterations)
            return BoundedEval::NoMatch;
        frame_scratch[static_cast<std::size_t>(step.targetThread)] =
            idx;
    }

    // evalCompiledAtoms reads each atom's buf at the frame index of
    // the value's own thread (a frame thread), so any resolved frame
    // index past the watermark would read unpublished data.
    for (const ThreadId t : frameThreads_)
        if (frame_scratch[static_cast<std::size_t>(t)] >= available)
            return BoundedEval::NeedData;

    return detail::evalCompiledAtoms(plan.compiled,
                                     frame_scratch.data(), iterations,
                                     raw)
               ? BoundedEval::Match
               : BoundedEval::NoMatch;
}

bool
HeuristicCounter::countPivotBounded(
    std::int64_t n, std::int64_t iterations, std::int64_t available,
    const Value *const *raw, CountMode mode, Counts &counts,
    std::vector<std::int64_t> &frame_scratch,
    std::vector<std::size_t> &match_scratch) const
{
    if (mode == CountMode::FirstMatch) {
        for (std::size_t o = 0; o < outcomes_.size(); ++o) {
            const BoundedEval r = evaluateAtBounded(
                o, n, iterations, available, raw, frame_scratch);
            if (r == BoundedEval::Match) {
                ++counts[o];
                return true;
            }
            // An undecidable outcome ahead of a potential later match
            // leaves the first-match winner unknown: defer the whole
            // pivot, count nothing yet.
            if (r == BoundedEval::NeedData)
                return false;
        }
        return true;
    }

    // Independent mode: stage matches and apply them only once every
    // outcome at this pivot is decidable, so a deferred pivot is
    // retried from scratch without double counting.
    match_scratch.clear();
    for (std::size_t o = 0; o < outcomes_.size(); ++o) {
        const BoundedEval r = evaluateAtBounded(
            o, n, iterations, available, raw, frame_scratch);
        if (r == BoundedEval::NeedData)
            return false;
        if (r == BoundedEval::Match)
            match_scratch.push_back(o);
    }
    for (const std::size_t o : match_scratch)
        ++counts[o];
    return true;
}

void
HeuristicCounter::countPivotRangeBounded(
    std::int64_t begin, std::int64_t end, std::int64_t iterations,
    std::int64_t available, const RawBufs &bufs, CountMode mode,
    Counts &counts, std::vector<std::int64_t> &deferred) const
{
    checkInternal(end <= available && available <= iterations,
                  "bounded pivot range past the watermark");
    const Value *const *raw = bufs.data();
    std::vector<std::int64_t> frame_scratch(bufs.numThreads(), -1);
    std::vector<std::size_t> match_scratch;
    for (std::int64_t n = begin; n < end; ++n)
        if (!countPivotBounded(n, iterations, available, raw, mode,
                               counts, frame_scratch, match_scratch))
            deferred.push_back(n);
}

void
HeuristicCounter::countDeferredPivots(
    const std::vector<std::int64_t> &pivots, std::int64_t iterations,
    std::int64_t available, const RawBufs &bufs, CountMode mode,
    Counts &counts, std::vector<std::int64_t> &still_deferred) const
{
    checkInternal(available <= iterations,
                  "watermark past the iteration count");
    const Value *const *raw = bufs.data();
    std::vector<std::int64_t> frame_scratch(bufs.numThreads(), -1);
    std::vector<std::size_t> match_scratch;
    for (const std::int64_t n : pivots)
        if (!countPivotBounded(n, iterations, available, raw, mode,
                               counts, frame_scratch, match_scratch))
            still_deferred.push_back(n);
}

std::optional<std::vector<std::int64_t>>
HeuristicCounter::findFirstFrame(
    std::size_t outcome_index, std::int64_t iterations,
    const std::vector<std::vector<Value>> &bufs) const
{
    checkUser(outcome_index < outcomes_.size(),
              "outcome index out of range");
    checkUser(iterations > 0, "need a positive iteration count");
    std::vector<std::int64_t> frame_scratch(bufs.size(), -1);
    const RawBufs raw(bufs);
    for (std::int64_t n = 0; n < iterations; ++n) {
        if (!evaluateAt(outcome_index, n, iterations, raw.data(),
                        frame_scratch))
            continue;
        std::vector<std::int64_t> frame;
        frame.reserve(frameThreads_.size());
        for (const ThreadId t : frameThreads_)
            frame.push_back(
                frame_scratch[static_cast<std::size_t>(t)]);
        return frame;
    }
    return std::nullopt;
}

Counts
HeuristicCounter::count(std::int64_t iterations, const RawBufs &bufs,
                        CountMode mode, std::size_t threads) const
{
    checkUser(iterations > 0, "COUNTH needs a positive iteration count");
    const std::size_t workers =
        common::ThreadPool::resolveThreads(threads);
    const Value *const *raw = bufs.data();

    const auto count_pivots = [&](std::int64_t begin, std::int64_t end,
                                  Counts &counts,
                                  std::vector<std::int64_t> &scratch) {
        for (std::int64_t n = begin; n < end; ++n) {
            for (std::size_t o = 0; o < outcomes_.size(); ++o) {
                if (evaluateAt(o, n, iterations, raw, scratch)) {
                    ++counts[o];
                    // Algorithm 2: first match per pivot iteration.
                    if (mode == CountMode::FirstMatch)
                        break;
                }
            }
        }
    };

    if (workers <= 1) {
        // Serial reference path.
        Counts counts(outcomes_.size(), 0);
        std::vector<std::int64_t> scratch(bufs.numThreads(), -1);
        count_pivots(0, iterations, counts, scratch);
        return counts;
    }

    common::ThreadPool &pool = common::ThreadPool::shared(workers);
    std::vector<Counts> partial(pool.numThreads(),
                                Counts(outcomes_.size(), 0));
    std::vector<std::vector<std::int64_t>> scratch(
        pool.numThreads(),
        std::vector<std::int64_t>(bufs.numThreads(), -1));
    pool.parallelFor(
        0, iterations, /*grain=*/256,
        [&](std::size_t shard, std::int64_t begin, std::int64_t end) {
            count_pivots(begin, end, partial[shard], scratch[shard]);
        });
    return mergeCounts(partial, outcomes_.size());
}

Counts
HeuristicCounter::count(
    std::int64_t iterations,
    const std::vector<std::vector<Value>> &bufs, CountMode mode,
    std::size_t threads) const
{
    return count(iterations, RawBufs(bufs), mode, threads);
}

} // namespace perple::core
