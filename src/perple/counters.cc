#include "perple/counters.h"

#include <algorithm>

#include "common/error.h"
#include "common/strings.h"

namespace perple::core
{

using litmus::ThreadId;
using litmus::Value;

namespace
{

std::int64_t
floorDiv(std::int64_t a, std::int64_t b)
{
    // b > 0 always (sequence strides).
    return a >= 0 ? a / b : -((-a + b - 1) / b);
}

std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return a > 0 ? (a + b - 1) / b : -((-a) / b);
}

/** At most this many existential store-only threads per outcome. */
constexpr std::size_t kMaxExistential = 8;

/**
 * Evaluate the atoms of @p outcome under the frame assignment
 * @p idx_by_thread (index -1 for threads without one), skipping atoms
 * whose condition is in @p consumed_mask.
 *
 * @param outcome The perpetual outcome.
 * @param idx_by_thread Iteration index per thread id.
 * @param iterations N (bounds existential indices).
 * @param bufs Raw buf pointers per thread.
 * @param consumed_mask Bit c set: skip atoms of condition c.
 */
bool
evalAtoms(const PerpetualOutcome &outcome,
          const std::int64_t *idx_by_thread, std::int64_t iterations,
          const Value *const *bufs, std::uint32_t consumed_mask)
{
    std::int64_t lo[kMaxExistential];
    std::int64_t hi[kMaxExistential];
    const std::size_t num_existential =
        outcome.existentialThreads.size();
    for (std::size_t e = 0; e < num_existential; ++e) {
        lo[e] = 0;
        hi[e] = iterations - 1;
    }

    for (const Atom &atom : outcome.atoms) {
        if (consumed_mask &
            (1u << static_cast<unsigned>(atom.conditionIndex)))
            continue;

        const BufAccess &access = atom.value;
        const std::int64_t n =
            idx_by_thread[static_cast<std::size_t>(access.thread)];
        const Value val =
            bufs[access.thread][access.loadsPerIteration * n +
                                access.slot];

        if (atom.kind == Atom::Kind::ReadsAtOrAfter) {
            if (atom.checkResidue &&
                (val < atom.offset ||
                 (val - atom.offset) % atom.stride != 0))
                return false;
            if (atom.indexIsFrame) {
                const std::int64_t idx = idx_by_thread[
                    static_cast<std::size_t>(atom.indexThread)];
                if (val < atom.stride * idx + atom.offset)
                    return false;
            } else {
                const auto it = std::find(
                    outcome.existentialThreads.begin(),
                    outcome.existentialThreads.end(), atom.indexThread);
                const auto e = static_cast<std::size_t>(
                    it - outcome.existentialThreads.begin());
                hi[e] = std::min(
                    hi[e], floorDiv(val - atom.offset, atom.stride));
            }
        } else { // ReadsBefore: val <= stride * idx + offset - 1.
            if (atom.indexIsFrame) {
                const std::int64_t idx = idx_by_thread[
                    static_cast<std::size_t>(atom.indexThread)];
                if (val > atom.stride * idx + atom.offset - 1)
                    return false;
            } else {
                const auto it = std::find(
                    outcome.existentialThreads.begin(),
                    outcome.existentialThreads.end(), atom.indexThread);
                const auto e = static_cast<std::size_t>(
                    it - outcome.existentialThreads.begin());
                lo[e] = std::max(
                    lo[e], ceilDiv(val - atom.offset + 1, atom.stride));
            }
        }
    }

    for (std::size_t e = 0; e < num_existential; ++e)
        if (lo[e] > hi[e])
            return false;
    return true;
}

/** Collect raw buf pointers (empty threads map to nullptr). */
std::vector<const Value *>
rawBufs(const std::vector<std::vector<Value>> &bufs)
{
    std::vector<const Value *> raw(bufs.size());
    for (std::size_t t = 0; t < bufs.size(); ++t)
        raw[t] = bufs[t].empty() ? nullptr : bufs[t].data();
    return raw;
}

} // namespace

// ---------------------------------------------------------------------
// ExhaustiveCounter
// ---------------------------------------------------------------------

ExhaustiveCounter::ExhaustiveCounter(
    const litmus::Test &test, std::vector<PerpetualOutcome> outcomes)
    : frameThreads_(test.loadThreads()), outcomes_(std::move(outcomes))
{
    checkUser(!frameThreads_.empty(),
              "a perpetual test needs at least one load thread");
    for (const auto &outcome : outcomes_) {
        checkUser(outcome.existentialThreads.size() <= kMaxExistential,
                  "too many store-only threads in one outcome");
        checkUser(outcome.numConditions <= 32,
                  "too many conditions in one outcome");
    }
}

Counts
ExhaustiveCounter::count(
    std::int64_t iterations,
    const std::vector<std::vector<Value>> &bufs, CountMode mode) const
{
    checkUser(iterations > 0, "COUNT needs a positive iteration count");
    Counts counts(outcomes_.size(), 0);
    const auto raw = rawBufs(bufs);

    // Frame odometer over the load threads (Algorithm 1's nested
    // loops, for any T_L).
    const std::size_t dims = frameThreads_.size();
    std::vector<std::int64_t> frame(dims, 0);
    std::vector<std::int64_t> idx_by_thread(bufs.size(), -1);

    while (true) {
        for (std::size_t d = 0; d < dims; ++d)
            idx_by_thread[static_cast<std::size_t>(frameThreads_[d])] =
                frame[d];

        for (std::size_t o = 0; o < outcomes_.size(); ++o) {
            if (evalAtoms(outcomes_[o], idx_by_thread.data(),
                          iterations, raw.data(), 0)) {
                ++counts[o];
                // Algorithm 1: at most one outcome per frame.
                if (mode == CountMode::FirstMatch)
                    break;
            }
        }

        // Advance the odometer, last dimension fastest.
        std::size_t d = dims;
        bool advanced = false;
        while (d > 0) {
            --d;
            if (++frame[d] < iterations) {
                advanced = true;
                break;
            }
            frame[d] = 0;
        }
        if (!advanced)
            return counts;
    }
}

std::optional<std::vector<std::int64_t>>
ExhaustiveCounter::findFirstFrame(
    std::size_t outcome_index, std::int64_t iterations,
    const std::vector<std::vector<Value>> &bufs) const
{
    checkUser(outcome_index < outcomes_.size(),
              "outcome index out of range");
    const std::size_t dims = frameThreads_.size();
    std::vector<std::int64_t> frame(dims, 0);
    while (true) {
        if (evaluate(outcome_index, frame, iterations, bufs))
            return frame;
        std::size_t d = dims;
        bool advanced = false;
        while (d > 0) {
            --d;
            if (++frame[d] < iterations) {
                advanced = true;
                break;
            }
            frame[d] = 0;
        }
        if (!advanced)
            return std::nullopt;
    }
}

bool
ExhaustiveCounter::evaluate(
    std::size_t outcome_index, const std::vector<std::int64_t> &frame,
    std::int64_t iterations,
    const std::vector<std::vector<Value>> &bufs) const
{
    checkUser(outcome_index < outcomes_.size(),
              "outcome index out of range");
    checkUser(frame.size() == frameThreads_.size(),
              "frame arity does not match the test's load threads");
    const auto raw = rawBufs(bufs);
    std::vector<std::int64_t> idx_by_thread(bufs.size(), -1);
    for (std::size_t d = 0; d < frame.size(); ++d)
        idx_by_thread[static_cast<std::size_t>(frameThreads_[d])] =
            frame[d];
    return evalAtoms(outcomes_[outcome_index], idx_by_thread.data(),
                     iterations, raw.data(), 0);
}

// ---------------------------------------------------------------------
// HeuristicCounter
// ---------------------------------------------------------------------

HeuristicCounter::HeuristicCounter(
    const litmus::Test &test, std::vector<PerpetualOutcome> outcomes)
    : test_(&test),
      frameThreads_(test.loadThreads()),
      outcomes_(std::move(outcomes))
{
    checkUser(!frameThreads_.empty(),
              "a perpetual test needs at least one load thread");

    for (const auto &outcome : outcomes_) {
        checkUser(outcome.numConditions <= 32,
                  "too many conditions in one outcome");

        // Group atoms by condition for substitution planning.
        std::vector<std::vector<const Atom *>> by_condition(
            static_cast<std::size_t>(outcome.numConditions));
        for (const Atom &atom : outcome.atoms)
            by_condition[static_cast<std::size_t>(atom.conditionIndex)]
                .push_back(&atom);

        // Try each frame thread as pivot; keep the plan resolving the
        // most threads without the fallback.
        Plan best;
        std::size_t best_resolved = 0;
        for (const ThreadId pivot : frameThreads_) {
            Plan plan;
            plan.pivot = pivot;
            std::vector<ThreadId> resolved = {pivot};
            std::vector<bool> consumed(by_condition.size(), false);

            bool progress = true;
            while (progress) {
                progress = false;
                for (std::size_t c = 0;
                     c < by_condition.size() && !progress; ++c) {
                    if (consumed[c] || by_condition[c].empty())
                        continue;
                    const Atom *first = by_condition[c].front();
                    const ThreadId load_thread = first->value.thread;
                    if (std::find(resolved.begin(), resolved.end(),
                                  load_thread) == resolved.end())
                        continue;
                    // Find an unresolved frame thread among the
                    // condition's index threads.
                    for (const Atom *atom : by_condition[c]) {
                        if (!atom->indexIsFrame)
                            continue;
                        if (std::find(resolved.begin(), resolved.end(),
                                      atom->indexThread) !=
                            resolved.end())
                            continue;
                        ResolutionStep step;
                        step.targetThread = atom->indexThread;
                        step.conditionIndex = static_cast<int>(c);
                        step.source = first->value;
                        step.sourceThread = load_thread;
                        step.stride = atom->stride;
                        if (first->kind == Atom::Kind::ReadsAtOrAfter) {
                            step.rfDecode = true;
                            step.offset = first->offset;
                        } else {
                            step.rfDecode = false;
                            for (const Atom *sibling : by_condition[c])
                                if (sibling->indexThread ==
                                    atom->indexThread)
                                    step.frOffsets.push_back(
                                        sibling->offset);
                        }
                        plan.steps.push_back(std::move(step));
                        plan.consumedConditions.push_back(
                            static_cast<int>(c));
                        consumed[c] = true;
                        resolved.push_back(atom->indexThread);
                        progress = true;
                        break;
                    }
                }
            }

            const std::size_t resolved_count = resolved.size();
            if (resolved_count > best_resolved ||
                best.pivot < 0) {
                // Fallback: remaining frame threads track the pivot.
                for (const ThreadId t : frameThreads_) {
                    if (std::find(resolved.begin(), resolved.end(),
                                  t) != resolved.end())
                        continue;
                    ResolutionStep step;
                    step.targetThread = t;
                    step.fallback = true;
                    plan.steps.push_back(std::move(step));
                }
                best = std::move(plan);
                best_resolved = resolved_count;
            }
            if (best_resolved == frameThreads_.size())
                break;
        }
        plans_.push_back(std::move(best));
    }
}

ThreadId
HeuristicCounter::pivotThread(std::size_t outcome_index) const
{
    checkUser(outcome_index < plans_.size(),
              "outcome index out of range");
    return plans_[outcome_index].pivot;
}

const std::vector<ResolutionStep> &
HeuristicCounter::planSteps(std::size_t outcome_index) const
{
    checkUser(outcome_index < plans_.size(),
              "outcome index out of range");
    return plans_[outcome_index].steps;
}

const std::vector<int> &
HeuristicCounter::consumedConditions(std::size_t outcome_index) const
{
    checkUser(outcome_index < plans_.size(),
              "outcome index out of range");
    return plans_[outcome_index].consumedConditions;
}

bool
HeuristicCounter::usedFallback() const
{
    for (const auto &plan : plans_)
        for (const auto &step : plan.steps)
            if (step.fallback)
                return true;
    return false;
}

std::string
HeuristicCounter::describePlan(std::size_t outcome_index) const
{
    checkUser(outcome_index < plans_.size(),
              "outcome index out of range");
    const Plan &plan = plans_[outcome_index];
    std::string out =
        format("pivot: n_%d; ", plan.pivot);
    if (plan.steps.empty())
        return out + "no substitutions needed";
    std::vector<std::string> parts;
    for (const auto &step : plan.steps) {
        if (step.fallback) {
            parts.push_back(format("n_%d := n_%d (fallback)",
                                   step.targetThread, plan.pivot));
            continue;
        }
        const std::string src = format(
            "buf_%d[%d*n_%d + %d]", step.source.thread,
            step.source.loadsPerIteration, step.sourceThread,
            step.source.slot);
        if (step.rfDecode) {
            parts.push_back(format(
                "n_%d := (%s - %lld) / %lld (rf decode)",
                step.targetThread, src.c_str(),
                static_cast<long long>(step.offset),
                static_cast<long long>(step.stride)));
        } else {
            parts.push_back(format(
                "n_%d := writer(%s) + 1 (fr decode)",
                step.targetThread, src.c_str()));
        }
    }
    return out + join(parts, "; ");
}

bool
HeuristicCounter::evaluateAt(
    std::size_t o, std::int64_t n, std::int64_t iterations,
    const std::vector<std::vector<Value>> &bufs,
    const Value *const *raw,
    std::vector<std::int64_t> &frame_scratch) const
{
    const Plan &plan = plans_[o];
    const PerpetualOutcome &outcome = outcomes_[o];

    std::fill(frame_scratch.begin(), frame_scratch.end(), -1);
    frame_scratch[static_cast<std::size_t>(plan.pivot)] = n;

    for (const auto &step : plan.steps) {
        std::int64_t idx;
        if (step.fallback) {
            idx = n;
        } else {
            const std::int64_t src_n = frame_scratch[
                static_cast<std::size_t>(step.sourceThread)];
            const Value val =
                bufs[static_cast<std::size_t>(step.source.thread)]
                    [static_cast<std::size_t>(
                        step.source.loadsPerIteration * src_n +
                        step.source.slot)];
            if (step.rfDecode) {
                const std::int64_t d = val - step.offset;
                if (d < 0 || d % step.stride != 0)
                    return false;
                idx = d / step.stride;
            } else if (val == 0) {
                // Reading the initial value: the writer precedes the
                // target thread's very first store.
                idx = 0;
            } else {
                idx = -1;
                for (const std::int64_t a : step.frOffsets) {
                    const std::int64_t d = val - a;
                    if (d >= 0 && d % step.stride == 0) {
                        idx = d / step.stride + 1;
                        break;
                    }
                }
                if (idx < 0)
                    return false;
            }
        }
        if (idx < 0 || idx >= iterations)
            return false;
        frame_scratch[static_cast<std::size_t>(step.targetThread)] =
            idx;
    }

    std::uint32_t consumed_mask = 0;
    for (const int c : plan.consumedConditions)
        consumed_mask |= 1u << static_cast<unsigned>(c);

    return evalAtoms(outcome, frame_scratch.data(), iterations, raw,
                     consumed_mask);
}

std::optional<std::vector<std::int64_t>>
HeuristicCounter::findFirstFrame(
    std::size_t outcome_index, std::int64_t iterations,
    const std::vector<std::vector<Value>> &bufs) const
{
    checkUser(outcome_index < outcomes_.size(),
              "outcome index out of range");
    checkUser(iterations > 0, "need a positive iteration count");
    std::vector<std::int64_t> frame_scratch(bufs.size(), -1);
    const auto raw = rawBufs(bufs);
    for (std::int64_t n = 0; n < iterations; ++n) {
        if (!evaluateAt(outcome_index, n, iterations, bufs, raw.data(),
                        frame_scratch))
            continue;
        std::vector<std::int64_t> frame;
        frame.reserve(frameThreads_.size());
        for (const ThreadId t : frameThreads_)
            frame.push_back(
                frame_scratch[static_cast<std::size_t>(t)]);
        return frame;
    }
    return std::nullopt;
}

Counts
HeuristicCounter::count(
    std::int64_t iterations,
    const std::vector<std::vector<Value>> &bufs, CountMode mode) const
{
    checkUser(iterations > 0, "COUNTH needs a positive iteration count");
    Counts counts(outcomes_.size(), 0);
    std::vector<std::int64_t> frame_scratch(bufs.size(), -1);
    const auto raw = rawBufs(bufs);

    for (std::int64_t n = 0; n < iterations; ++n) {
        for (std::size_t o = 0; o < outcomes_.size(); ++o) {
            if (evaluateAt(o, n, iterations, bufs, raw.data(),
                           frame_scratch)) {
                ++counts[o];
                // Algorithm 2: first match per pivot iteration.
                if (mode == CountMode::FirstMatch)
                    break;
            }
        }
    }
    return counts;
}

} // namespace perple::core
