#include "perple/counters.h"

#include <algorithm>

#include "common/error.h"
#include "common/strings.h"
#include "common/thread_pool.h"

namespace perple::core
{

using litmus::ThreadId;
using litmus::Value;

namespace
{

/** Merge per-shard partial counts (shard order; sums commute). */
Counts
mergeCounts(const std::vector<Counts> &partial, std::size_t outcomes)
{
    Counts counts(outcomes, 0);
    for (const Counts &shard : partial)
        for (std::size_t o = 0; o < outcomes; ++o)
            counts[o] += shard[o];
    return counts;
}

std::size_t
clampBatchWidth(std::size_t width)
{
    return std::min(std::max<std::size_t>(width, 1),
                    detail::kMaxKernelBatchWidth);
}

/** Build a KernelReport from per-outcome kernels (both counters). */
template <typename Kernel>
KernelReport
buildKernelReport(const std::vector<Kernel> &kernels, KernelMode mode,
                  bool batched, std::size_t batch_width)
{
    KernelReport report;
    report.mode = mode;
    report.batched = batched;
    report.batchWidth = batched ? batch_width : 0;
    report.outcomes.reserve(kernels.size());
    for (const Kernel &kernel : kernels)
        report.outcomes.push_back({kernel.shape().describe(),
                                   batched && kernel.specialized()});
    return report;
}

} // namespace

// ---------------------------------------------------------------------
// ExhaustiveCounter
// ---------------------------------------------------------------------

ExhaustiveCounter::ExhaustiveCounter(
    const litmus::Test &test, std::vector<PerpetualOutcome> outcomes)
    : frameThreads_(test.loadThreads()), outcomes_(std::move(outcomes))
{
    checkUser(!frameThreads_.empty(),
              "a perpetual test needs at least one load thread");
    for (const auto &outcome : outcomes_)
        checkUser(outcome.numConditions <= 32,
                  "too many conditions in one outcome");
    // Flatten every atom once: existential std::find resolved to a
    // slot index, vector metadata folded into POD records.
    compiled_ = detail::compileOutcomes(outcomes_);
    kernels_.reserve(compiled_.size());
    for (const detail::CompiledOutcome &compiled : compiled_)
        kernels_.emplace_back(compiled);
}

void
ExhaustiveCounter::setKernelBatchWidth(std::size_t width)
{
    kernelBatchWidth_ = clampBatchWidth(width);
}

bool
ExhaustiveCounter::useKernels() const
{
    if (kernelMode_ == KernelMode::Interpreter)
        return false;
    if (kernelMode_ == KernelMode::Specialized)
        return true;
    // Auto: batch only when some outcome actually gets a specialized
    // kernel; the per-lane gather fallback buys nothing by itself.
    for (const detail::AtomKernel &kernel : kernels_)
        if (kernel.specialized())
            return true;
    return false;
}

KernelReport
ExhaustiveCounter::kernelReport() const
{
    return buildKernelReport(kernels_, kernelMode_, useKernels(),
                             kernelBatchWidth_);
}

void
ExhaustiveCounter::countRangeBlocked(std::int64_t outer_begin,
                                     std::int64_t outer_end,
                                     std::int64_t iterations,
                                     const RawBufs &bufs, CountMode mode,
                                     Counts &counts,
                                     detail::BlockScratch &scratch) const
{
    if (outer_end <= outer_begin)
        return;
    const std::size_t dims = frameThreads_.size();
    const std::size_t width_cap = kernelBatchWidth_;
    const auto width_cap_i = static_cast<std::int64_t>(width_cap);
    scratch.resize(bufs.numThreads(), width_cap);
    const Value *const *raw = bufs.data();

    // The innermost dimension advances fastest (the odometer order of
    // countRange), so it is the one cut into lanes; the outer
    // dimensions broadcast into their rows.
    const auto inner =
        static_cast<std::size_t>(frameThreads_[dims - 1]);
    const std::int64_t inner_begin = dims == 1 ? outer_begin : 0;
    const std::int64_t inner_end = dims == 1 ? outer_end : iterations;

    std::vector<std::int64_t> outer(dims > 1 ? dims - 1 : 0, 0);
    if (dims > 1)
        outer[0] = outer_begin;

    std::uint8_t match[detail::kMaxKernelBatchWidth];
    std::uint8_t settled[detail::kMaxKernelBatchWidth];

    while (true) {
        for (std::size_t d = 0; d + 1 < dims; ++d)
            std::fill_n(scratch.frameRow(static_cast<std::size_t>(
                            frameThreads_[d])),
                        width_cap, outer[d]);

        std::int64_t *inner_row = scratch.frameRow(inner);
        for (std::int64_t i0 = inner_begin; i0 < inner_end;
             i0 += width_cap_i) {
            const auto width = static_cast<std::size_t>(
                std::min(width_cap_i, inner_end - i0));
            for (std::size_t w = 0; w < width; ++w)
                inner_row[w] = i0 + static_cast<std::int64_t>(w);

            if (mode == CountMode::FirstMatch) {
                std::fill_n(settled, width,
                            static_cast<std::uint8_t>(0));
                std::size_t remaining = width;
                for (std::size_t o = 0;
                     o < compiled_.size() && remaining > 0; ++o) {
                    // AND contract: settled lanes enter 0 and skip
                    // the kernel's work (the else-if chain, batched).
                    for (std::size_t w = 0; w < width; ++w)
                        match[w] = static_cast<std::uint8_t>(
                            settled[w] == 0);
                    kernels_[o].evalBlock(compiled_[o], scratch, width,
                                          iterations, raw, match);
                    for (std::size_t w = 0; w < width; ++w) {
                        if (settled[w] == 0 && match[w] != 0) {
                            settled[w] = 1;
                            --remaining;
                            ++counts[o];
                        }
                    }
                }
            } else {
                for (std::size_t o = 0; o < compiled_.size(); ++o) {
                    std::fill_n(match, width,
                                static_cast<std::uint8_t>(1));
                    kernels_[o].evalBlock(compiled_[o], scratch, width,
                                          iterations, raw, match);
                    for (std::size_t w = 0; w < width; ++w)
                        counts[o] += match[w];
                }
            }
        }

        if (dims == 1)
            return;
        std::size_t d = dims - 1;
        bool advanced = false;
        while (d > 0) {
            --d;
            const std::int64_t limit =
                d == 0 ? outer_end : iterations;
            if (++outer[d] < limit) {
                advanced = true;
                break;
            }
            outer[d] = 0;
        }
        if (!advanced)
            return;
    }
}

void
ExhaustiveCounter::countRange(std::int64_t outer_begin,
                              std::int64_t outer_end,
                              std::int64_t iterations,
                              const RawBufs &bufs, CountMode mode,
                              Counts &counts) const
{
    if (outer_end <= outer_begin)
        return;

    // Frame odometer over the load threads (Algorithm 1's nested
    // loops, for any T_L); the outermost dimension is bounded by the
    // shard's [outer_begin, outer_end), the inner ones by iterations.
    const std::size_t dims = frameThreads_.size();
    std::vector<std::int64_t> frame(dims, 0);
    frame[0] = outer_begin;
    std::vector<std::int64_t> idx_by_thread(bufs.numThreads(), -1);
    const Value *const *raw = bufs.data();

    while (true) {
        for (std::size_t d = 0; d < dims; ++d)
            idx_by_thread[static_cast<std::size_t>(frameThreads_[d])] =
                frame[d];

        for (std::size_t o = 0; o < compiled_.size(); ++o) {
            if (detail::evalCompiledAtoms(compiled_[o],
                                          idx_by_thread.data(),
                                          iterations, raw)) {
                ++counts[o];
                // Algorithm 1: at most one outcome per frame.
                if (mode == CountMode::FirstMatch)
                    break;
            }
        }

        // Advance the odometer, last dimension fastest.
        std::size_t d = dims;
        bool advanced = false;
        while (d > 0) {
            --d;
            const std::int64_t limit =
                d == 0 ? outer_end : iterations;
            if (++frame[d] < limit) {
                advanced = true;
                break;
            }
            frame[d] = 0;
        }
        if (!advanced || frame[0] >= outer_end)
            return;
    }
}

Counts
ExhaustiveCounter::count(std::int64_t iterations, const RawBufs &bufs,
                         CountMode mode, std::size_t threads) const
{
    checkUser(iterations > 0, "COUNT needs a positive iteration count");
    const std::size_t workers =
        common::ThreadPool::resolveThreads(threads);

    const bool blocked = useKernels();

    if (workers <= 1) {
        // Serial reference path: one shard covering every frame.
        Counts counts(outcomes_.size(), 0);
        if (blocked) {
            detail::BlockScratch scratch;
            countRangeBlocked(0, iterations, iterations, bufs, mode,
                              counts, scratch);
        } else {
            countRange(0, iterations, iterations, bufs, mode, counts);
        }
        return counts;
    }

    common::ThreadPool &pool = common::ThreadPool::shared(workers);
    std::vector<Counts> partial(pool.numThreads(),
                                Counts(outcomes_.size(), 0));
    std::vector<detail::BlockScratch> scratch(
        blocked ? pool.numThreads() : 0);
    // Each outermost index expands into N^{T_L - 1} frames, so a
    // grain of one outer index is already coarse enough.
    pool.parallelFor(
        0, iterations, /*grain=*/1,
        [&](std::size_t shard, std::int64_t begin, std::int64_t end) {
            if (blocked)
                countRangeBlocked(begin, end, iterations, bufs, mode,
                                  partial[shard], scratch[shard]);
            else
                countRange(begin, end, iterations, bufs, mode,
                           partial[shard]);
        });
    return mergeCounts(partial, outcomes_.size());
}

Counts
ExhaustiveCounter::count(
    std::int64_t iterations,
    const std::vector<std::vector<Value>> &bufs, CountMode mode,
    std::size_t threads) const
{
    return count(iterations, RawBufs(bufs), mode, threads);
}

std::optional<std::vector<std::int64_t>>
ExhaustiveCounter::findFirstFrame(
    std::size_t outcome_index, std::int64_t iterations,
    const std::vector<std::vector<Value>> &bufs) const
{
    checkUser(outcome_index < outcomes_.size(),
              "outcome index out of range");
    const RawBufs raw(bufs);
    const std::size_t dims = frameThreads_.size();
    std::vector<std::int64_t> frame(dims, 0);
    std::vector<std::int64_t> idx_by_thread(raw.numThreads(), -1);
    while (true) {
        for (std::size_t d = 0; d < dims; ++d)
            idx_by_thread[static_cast<std::size_t>(frameThreads_[d])] =
                frame[d];
        if (detail::evalCompiledAtoms(compiled_[outcome_index],
                                      idx_by_thread.data(), iterations,
                                      raw.data()))
            return frame;
        std::size_t d = dims;
        bool advanced = false;
        while (d > 0) {
            --d;
            if (++frame[d] < iterations) {
                advanced = true;
                break;
            }
            frame[d] = 0;
        }
        if (!advanced)
            return std::nullopt;
    }
}

bool
ExhaustiveCounter::evaluate(
    std::size_t outcome_index, const std::vector<std::int64_t> &frame,
    std::int64_t iterations,
    const std::vector<std::vector<Value>> &bufs) const
{
    checkUser(outcome_index < outcomes_.size(),
              "outcome index out of range");
    checkUser(frame.size() == frameThreads_.size(),
              "frame arity does not match the test's load threads");
    const RawBufs raw(bufs);
    std::vector<std::int64_t> idx_by_thread(raw.numThreads(), -1);
    for (std::size_t d = 0; d < frame.size(); ++d)
        idx_by_thread[static_cast<std::size_t>(frameThreads_[d])] =
            frame[d];
    return detail::evalCompiledAtoms(compiled_[outcome_index],
                                     idx_by_thread.data(), iterations,
                                     raw.data());
}

// ---------------------------------------------------------------------
// HeuristicCounter
// ---------------------------------------------------------------------

HeuristicCounter::HeuristicCounter(
    const litmus::Test &test, std::vector<PerpetualOutcome> outcomes)
    : test_(&test),
      frameThreads_(test.loadThreads()),
      outcomes_(std::move(outcomes))
{
    checkUser(!frameThreads_.empty(),
              "a perpetual test needs at least one load thread");

    for (const auto &outcome : outcomes_) {
        checkUser(outcome.numConditions <= 32,
                  "too many conditions in one outcome");

        // Group atoms by condition for substitution planning.
        std::vector<std::vector<const Atom *>> by_condition(
            static_cast<std::size_t>(outcome.numConditions));
        for (const Atom &atom : outcome.atoms)
            by_condition[static_cast<std::size_t>(atom.conditionIndex)]
                .push_back(&atom);

        // Try each frame thread as pivot; keep the plan resolving the
        // most threads without the fallback.
        Plan best;
        std::size_t best_resolved = 0;
        for (const ThreadId pivot : frameThreads_) {
            Plan plan;
            plan.pivot = pivot;
            std::vector<ThreadId> resolved = {pivot};
            std::vector<bool> consumed(by_condition.size(), false);

            bool progress = true;
            while (progress) {
                progress = false;
                for (std::size_t c = 0;
                     c < by_condition.size() && !progress; ++c) {
                    if (consumed[c] || by_condition[c].empty())
                        continue;
                    const Atom *first = by_condition[c].front();
                    const ThreadId load_thread = first->value.thread;
                    if (std::find(resolved.begin(), resolved.end(),
                                  load_thread) == resolved.end())
                        continue;
                    // Find an unresolved frame thread among the
                    // condition's index threads.
                    for (const Atom *atom : by_condition[c]) {
                        if (!atom->indexIsFrame)
                            continue;
                        if (std::find(resolved.begin(), resolved.end(),
                                      atom->indexThread) !=
                            resolved.end())
                            continue;
                        ResolutionStep step;
                        step.targetThread = atom->indexThread;
                        step.conditionIndex = static_cast<int>(c);
                        step.source = first->value;
                        step.sourceThread = load_thread;
                        step.stride = atom->stride;
                        if (first->kind == Atom::Kind::ReadsAtOrAfter) {
                            step.rfDecode = true;
                            step.offset = first->offset;
                        } else {
                            step.rfDecode = false;
                            for (const Atom *sibling : by_condition[c])
                                if (sibling->indexThread ==
                                    atom->indexThread)
                                    step.frOffsets.push_back(
                                        sibling->offset);
                        }
                        plan.steps.push_back(std::move(step));
                        plan.consumedConditions.push_back(
                            static_cast<int>(c));
                        consumed[c] = true;
                        resolved.push_back(atom->indexThread);
                        progress = true;
                        break;
                    }
                }
            }

            const std::size_t resolved_count = resolved.size();
            if (resolved_count > best_resolved ||
                best.pivot < 0) {
                // Fallback: remaining frame threads track the pivot.
                for (const ThreadId t : frameThreads_) {
                    if (std::find(resolved.begin(), resolved.end(),
                                  t) != resolved.end())
                        continue;
                    ResolutionStep step;
                    step.targetThread = t;
                    step.fallback = true;
                    plan.steps.push_back(std::move(step));
                }
                best = std::move(plan);
                best_resolved = resolved_count;
            }
            if (best_resolved == frameThreads_.size())
                break;
        }

        // Fold the skip out of the evaluated atom list once. Only the
        // atoms a substitution satisfies by construction — those whose
        // index thread the step resolved — may be skipped; a consumed
        // `=0` condition has one fr atom per store to the location,
        // and the ones over other threads remain live constraints
        // (dropping them once let COUNTH overcount COUNT; caught by
        // the differential fuzzer).
        best.skipAtoms.assign(outcome.atoms.size(), false);
        for (const ResolutionStep &step : best.steps) {
            if (step.fallback)
                continue;
            for (std::size_t a = 0; a < outcome.atoms.size(); ++a) {
                const Atom &atom = outcome.atoms[a];
                if (atom.conditionIndex == step.conditionIndex &&
                    atom.indexIsFrame &&
                    atom.indexThread == step.targetThread)
                    best.skipAtoms[a] = true;
            }
        }
        best.compiled = detail::compileOutcome(outcome, best.skipAtoms);

        plans_.push_back(std::move(best));
    }

    // Flatten each plan into a pivot-block kernel (kernels.h): the
    // resolution steps as POD DecodeSteps plus the per-shape atom
    // kernel for the skip-folded compiled outcome.
    std::vector<std::int32_t> frame_threads;
    frame_threads.reserve(frameThreads_.size());
    for (const ThreadId t : frameThreads_)
        frame_threads.push_back(static_cast<std::int32_t>(t));
    kernels_.reserve(plans_.size());
    for (const Plan &plan : plans_) {
        std::vector<detail::DecodeStep> steps;
        steps.reserve(plan.steps.size());
        for (const ResolutionStep &step : plan.steps) {
            detail::DecodeStep flat;
            flat.targetThread =
                static_cast<std::int32_t>(step.targetThread);
            flat.sourceThread =
                static_cast<std::int32_t>(step.sourceThread);
            flat.bufThread =
                static_cast<std::int32_t>(step.source.thread);
            flat.loadsPerIteration = static_cast<std::int32_t>(
                step.source.loadsPerIteration);
            flat.slot = static_cast<std::int32_t>(step.source.slot);
            flat.rfDecode = step.rfDecode;
            flat.fallback = step.fallback;
            flat.stride = step.stride;
            flat.offset = step.offset;
            if (step.stride > 1 &&
                (step.stride & (step.stride - 1)) == 0) {
                flat.strideShift = 0;
                for (std::int64_t s = step.stride; s > 1; s >>= 1)
                    ++flat.strideShift;
            }
            flat.frOffsets = step.frOffsets;
            steps.push_back(std::move(flat));
        }
        kernels_.emplace_back(plan.compiled, std::move(steps),
                              static_cast<std::int32_t>(plan.pivot),
                              frame_threads);
    }
}

void
HeuristicCounter::setKernelBatchWidth(std::size_t width)
{
    kernelBatchWidth_ = clampBatchWidth(width);
}

bool
HeuristicCounter::useKernels() const
{
    if (kernelMode_ == KernelMode::Interpreter)
        return false;
    if (kernelMode_ == KernelMode::Specialized)
        return true;
    for (const detail::PivotKernel &kernel : kernels_)
        if (kernel.specialized())
            return true;
    return false;
}

KernelReport
HeuristicCounter::kernelReport() const
{
    return buildKernelReport(kernels_, kernelMode_, useKernels(),
                             kernelBatchWidth_);
}

ThreadId
HeuristicCounter::pivotThread(std::size_t outcome_index) const
{
    checkUser(outcome_index < plans_.size(),
              "outcome index out of range");
    return plans_[outcome_index].pivot;
}

const std::vector<ResolutionStep> &
HeuristicCounter::planSteps(std::size_t outcome_index) const
{
    checkUser(outcome_index < plans_.size(),
              "outcome index out of range");
    return plans_[outcome_index].steps;
}

const std::vector<int> &
HeuristicCounter::consumedConditions(std::size_t outcome_index) const
{
    checkUser(outcome_index < plans_.size(),
              "outcome index out of range");
    return plans_[outcome_index].consumedConditions;
}

const std::vector<bool> &
HeuristicCounter::skippedAtoms(std::size_t outcome_index) const
{
    checkUser(outcome_index < plans_.size(),
              "outcome index out of range");
    return plans_[outcome_index].skipAtoms;
}

bool
HeuristicCounter::usedFallback() const
{
    for (const auto &plan : plans_)
        for (const auto &step : plan.steps)
            if (step.fallback)
                return true;
    return false;
}

std::string
HeuristicCounter::describePlan(std::size_t outcome_index) const
{
    checkUser(outcome_index < plans_.size(),
              "outcome index out of range");
    const Plan &plan = plans_[outcome_index];
    std::string out =
        format("pivot: n_%d; ", plan.pivot);
    if (plan.steps.empty())
        return out + "no substitutions needed";
    std::vector<std::string> parts;
    for (const auto &step : plan.steps) {
        if (step.fallback) {
            parts.push_back(format("n_%d := n_%d (fallback)",
                                   step.targetThread, plan.pivot));
            continue;
        }
        const std::string src = format(
            "buf_%d[%d*n_%d + %d]", step.source.thread,
            step.source.loadsPerIteration, step.sourceThread,
            step.source.slot);
        if (step.rfDecode) {
            parts.push_back(format(
                "n_%d := (%s - %lld) / %lld (rf decode)",
                step.targetThread, src.c_str(),
                static_cast<long long>(step.offset),
                static_cast<long long>(step.stride)));
        } else {
            parts.push_back(format(
                "n_%d := writer(%s) + 1 (fr decode)",
                step.targetThread, src.c_str()));
        }
    }
    return out + join(parts, "; ");
}

bool
HeuristicCounter::evaluateAt(
    std::size_t o, std::int64_t n, std::int64_t iterations,
    const Value *const *raw,
    std::vector<std::int64_t> &frame_scratch) const
{
    // Batch evaluation is the available == iterations special case of
    // the bounded evaluator (where NeedData is unreachable); sharing
    // the body keeps streaming and batch semantics identical by
    // construction. The extra watermark compares are branch-predicted
    // away in the batch case.
    return evaluateAtBounded(o, n, iterations, iterations, raw,
                             frame_scratch) == BoundedEval::Match;
}

BoundedEval
HeuristicCounter::evaluateAtBounded(
    std::size_t o, std::int64_t n, std::int64_t iterations,
    std::int64_t available, const Value *const *raw,
    std::vector<std::int64_t> &frame_scratch) const
{
    const Plan &plan = plans_[o];

    std::fill(frame_scratch.begin(), frame_scratch.end(), -1);
    frame_scratch[static_cast<std::size_t>(plan.pivot)] = n;

    for (const auto &step : plan.steps) {
        std::int64_t idx;
        if (step.fallback) {
            idx = n;
        } else {
            const std::int64_t src_n = frame_scratch[
                static_cast<std::size_t>(step.sourceThread)];
            // The decode *reads* the source thread's buf at src_n; an
            // index past the watermark means that stripe is not
            // published yet, so the decision must wait. Checked
            // before the read — never touch unwritten memory.
            if (src_n >= available)
                return BoundedEval::NeedData;
            const Value val =
                raw[static_cast<std::size_t>(step.source.thread)]
                   [step.source.loadsPerIteration * src_n +
                    step.source.slot];
            if (step.rfDecode) {
                const std::int64_t d = val - step.offset;
                if (d < 0 || d % step.stride != 0)
                    return BoundedEval::NoMatch;
                idx = d / step.stride;
            } else if (val == 0) {
                // Reading the initial value: the writer precedes the
                // target thread's very first store.
                idx = 0;
            } else {
                idx = -1;
                for (const std::int64_t a : step.frOffsets) {
                    const std::int64_t d = val - a;
                    if (d >= 0 && d % step.stride == 0) {
                        idx = d / step.stride + 1;
                        break;
                    }
                }
                if (idx < 0)
                    return BoundedEval::NoMatch;
            }
        }
        // Order matters for bit-identity: out-of-range indices are
        // NoMatch exactly as in batch, *before* any watermark check —
        // idx in [available, iterations) only defers when the value
        // there is actually read (by a later step's source above, or
        // by the atom scan's frame check below).
        if (idx < 0 || idx >= iterations)
            return BoundedEval::NoMatch;
        frame_scratch[static_cast<std::size_t>(step.targetThread)] =
            idx;
    }

    // evalCompiledAtoms reads each atom's buf at the frame index of
    // the value's own thread (a frame thread), so any resolved frame
    // index past the watermark would read unpublished data.
    for (const ThreadId t : frameThreads_)
        if (frame_scratch[static_cast<std::size_t>(t)] >= available)
            return BoundedEval::NeedData;

    return detail::evalCompiledAtoms(plan.compiled,
                                     frame_scratch.data(), iterations,
                                     raw)
               ? BoundedEval::Match
               : BoundedEval::NoMatch;
}

bool
HeuristicCounter::countPivotBounded(
    std::int64_t n, std::int64_t iterations, std::int64_t available,
    const Value *const *raw, CountMode mode, Counts &counts,
    std::vector<std::int64_t> &frame_scratch,
    std::vector<std::size_t> &match_scratch) const
{
    if (mode == CountMode::FirstMatch) {
        for (std::size_t o = 0; o < outcomes_.size(); ++o) {
            const BoundedEval r = evaluateAtBounded(
                o, n, iterations, available, raw, frame_scratch);
            if (r == BoundedEval::Match) {
                ++counts[o];
                return true;
            }
            // An undecidable outcome ahead of a potential later match
            // leaves the first-match winner unknown: defer the whole
            // pivot, count nothing yet.
            if (r == BoundedEval::NeedData)
                return false;
        }
        return true;
    }

    // Independent mode: stage matches and apply them only once every
    // outcome at this pivot is decidable, so a deferred pivot is
    // retried from scratch without double counting.
    match_scratch.clear();
    for (std::size_t o = 0; o < outcomes_.size(); ++o) {
        const BoundedEval r = evaluateAtBounded(
            o, n, iterations, available, raw, frame_scratch);
        if (r == BoundedEval::NeedData)
            return false;
        if (r == BoundedEval::Match)
            match_scratch.push_back(o);
    }
    for (const std::size_t o : match_scratch)
        ++counts[o];
    return true;
}

void
HeuristicCounter::countPivotRangeBlocked(
    std::int64_t begin, std::int64_t end, std::int64_t iterations,
    std::int64_t available, const RawBufs &bufs, CountMode mode,
    Counts &counts, std::vector<std::int64_t> *deferred,
    detail::BlockScratch &scratch) const
{
    if (end <= begin)
        return;
    const std::size_t width_cap = kernelBatchWidth_;
    const auto width_cap_i = static_cast<std::int64_t>(width_cap);
    scratch.resize(bufs.numThreads(), width_cap);
    const Value *const *raw = bufs.data();
    const std::size_t num_outcomes = outcomes_.size();

    std::uint8_t match[detail::kMaxKernelBatchWidth];
    std::uint8_t need[detail::kMaxKernelBatchWidth];
    std::uint8_t defer[detail::kMaxKernelBatchWidth];
    std::uint8_t settled[detail::kMaxKernelBatchWidth];
    std::uint8_t unsettled[detail::kMaxKernelBatchWidth];
    // When a first-match block is nearly settled, later outcomes see a
    // sparse active mask but the block path still pays full-width
    // loads; below this many live lanes the scalar evaluator (the
    // bit-identity reference itself) is cheaper per lane.
    constexpr std::size_t kSparseLanes = 4;
    std::vector<std::int64_t> frame_scratch(bufs.numThreads(), -1);
    // Independent mode stages every outcome's matches until the whole
    // lane is known decidable (the scalar path's match_scratch).
    std::vector<std::uint8_t> staged;
    if (mode == CountMode::Independent)
        staged.assign(num_outcomes * width_cap, 0);

    for (std::int64_t n0 = begin; n0 < end; n0 += width_cap_i) {
        const auto width =
            static_cast<std::size_t>(std::min(width_cap_i, end - n0));
        std::fill_n(defer, width, static_cast<std::uint8_t>(0));

        if (mode == CountMode::FirstMatch) {
            std::fill_n(settled, width, static_cast<std::uint8_t>(0));
            std::fill_n(unsettled, width, static_cast<std::uint8_t>(1));
            std::size_t remaining = width;
            for (std::size_t o = 0;
                 o < num_outcomes && remaining > 0; ++o) {
                if (remaining <= kSparseLanes) {
                    // Finish the few undecided lanes scalar: identical
                    // verdicts by construction (evaluateAtBounded IS
                    // the reference the kernels reproduce).
                    for (std::size_t w = 0; w < width; ++w) {
                        if (settled[w] != 0)
                            continue;
                        const std::int64_t n =
                            n0 + static_cast<std::int64_t>(w);
                        for (std::size_t o2 = o; o2 < num_outcomes;
                             ++o2) {
                            const BoundedEval r = evaluateAtBounded(
                                o2, n, iterations, available, raw,
                                frame_scratch);
                            if (r == BoundedEval::Match) {
                                ++counts[o2];
                                break;
                            }
                            if (r == BoundedEval::NeedData) {
                                defer[w] = 1;
                                break;
                            }
                        }
                        settled[w] = 1;
                        unsettled[w] = 0;
                    }
                    remaining = 0;
                    break;
                }
                // Settled lanes are masked inactive, so later
                // outcomes only pay for undecided lanes (the scalar
                // else-if chain, batched).
                kernels_[o].evalPivotBlock(plans_[o].compiled, scratch,
                                           n0, width, iterations,
                                           available, raw, match, need,
                                           unsettled);
                for (std::size_t w = 0; w < width; ++w) {
                    if (settled[w] != 0)
                        continue;
                    if (need[w] != 0) {
                        // First-match winner unknown past an
                        // undecidable outcome: defer the whole lane.
                        settled[w] = 1;
                        unsettled[w] = 0;
                        defer[w] = 1;
                        --remaining;
                    } else if (match[w] != 0) {
                        settled[w] = 1;
                        unsettled[w] = 0;
                        ++counts[o];
                        --remaining;
                    }
                }
            }
        } else {
            for (std::size_t o = 0; o < num_outcomes; ++o) {
                kernels_[o].evalPivotBlock(plans_[o].compiled, scratch,
                                           n0, width, iterations,
                                           available, raw, match, need);
                std::uint8_t *row = staged.data() + o * width_cap;
                for (std::size_t w = 0; w < width; ++w) {
                    row[w] = match[w];
                    defer[w] =
                        static_cast<std::uint8_t>(defer[w] | need[w]);
                }
            }
            for (std::size_t o = 0; o < num_outcomes; ++o) {
                const std::uint8_t *row =
                    staged.data() + o * width_cap;
                for (std::size_t w = 0; w < width; ++w)
                    counts[o] += static_cast<std::uint64_t>(
                        row[w] & static_cast<std::uint8_t>(
                                     defer[w] == 0));
            }
        }

        for (std::size_t w = 0; w < width; ++w) {
            if (defer[w] != 0) {
                checkInternal(deferred != nullptr,
                              "pivot deferred at a full watermark");
                deferred->push_back(n0 +
                                    static_cast<std::int64_t>(w));
            }
        }
    }
}

void
HeuristicCounter::countPivotRangeBounded(
    std::int64_t begin, std::int64_t end, std::int64_t iterations,
    std::int64_t available, const RawBufs &bufs, CountMode mode,
    Counts &counts, std::vector<std::int64_t> &deferred) const
{
    checkInternal(end <= available && available <= iterations,
                  "bounded pivot range past the watermark");
    if (useKernels()) {
        detail::BlockScratch scratch;
        countPivotRangeBlocked(begin, end, iterations, available, bufs,
                               mode, counts, &deferred, scratch);
        return;
    }
    const Value *const *raw = bufs.data();
    std::vector<std::int64_t> frame_scratch(bufs.numThreads(), -1);
    std::vector<std::size_t> match_scratch;
    for (std::int64_t n = begin; n < end; ++n)
        if (!countPivotBounded(n, iterations, available, raw, mode,
                               counts, frame_scratch, match_scratch))
            deferred.push_back(n);
}

void
HeuristicCounter::countDeferredPivots(
    const std::vector<std::int64_t> &pivots, std::int64_t iterations,
    std::int64_t available, const RawBufs &bufs, CountMode mode,
    Counts &counts, std::vector<std::int64_t> &still_deferred) const
{
    checkInternal(available <= iterations,
                  "watermark past the iteration count");
    const Value *const *raw = bufs.data();
    std::vector<std::int64_t> frame_scratch(bufs.numThreads(), -1);
    std::vector<std::size_t> match_scratch;
    for (const std::int64_t n : pivots)
        if (!countPivotBounded(n, iterations, available, raw, mode,
                               counts, frame_scratch, match_scratch))
            still_deferred.push_back(n);
}

std::optional<std::vector<std::int64_t>>
HeuristicCounter::findFirstFrame(
    std::size_t outcome_index, std::int64_t iterations,
    const std::vector<std::vector<Value>> &bufs) const
{
    checkUser(outcome_index < outcomes_.size(),
              "outcome index out of range");
    checkUser(iterations > 0, "need a positive iteration count");
    std::vector<std::int64_t> frame_scratch(bufs.size(), -1);
    const RawBufs raw(bufs);
    for (std::int64_t n = 0; n < iterations; ++n) {
        if (!evaluateAt(outcome_index, n, iterations, raw.data(),
                        frame_scratch))
            continue;
        std::vector<std::int64_t> frame;
        frame.reserve(frameThreads_.size());
        for (const ThreadId t : frameThreads_)
            frame.push_back(
                frame_scratch[static_cast<std::size_t>(t)]);
        return frame;
    }
    return std::nullopt;
}

Counts
HeuristicCounter::count(std::int64_t iterations, const RawBufs &bufs,
                        CountMode mode, std::size_t threads) const
{
    checkUser(iterations > 0, "COUNTH needs a positive iteration count");
    const std::size_t workers =
        common::ThreadPool::resolveThreads(threads);
    const Value *const *raw = bufs.data();
    const bool blocked = useKernels();

    const auto count_pivots = [&](std::int64_t begin, std::int64_t end,
                                  Counts &counts,
                                  std::vector<std::int64_t> &scratch) {
        for (std::int64_t n = begin; n < end; ++n) {
            for (std::size_t o = 0; o < outcomes_.size(); ++o) {
                if (evaluateAt(o, n, iterations, raw, scratch)) {
                    ++counts[o];
                    // Algorithm 2: first match per pivot iteration.
                    if (mode == CountMode::FirstMatch)
                        break;
                }
            }
        }
    };

    if (workers <= 1) {
        // Serial reference path.
        Counts counts(outcomes_.size(), 0);
        if (blocked) {
            // The full watermark: NeedData is unreachable.
            detail::BlockScratch block_scratch;
            countPivotRangeBlocked(0, iterations, iterations,
                                   iterations, bufs, mode, counts,
                                   nullptr, block_scratch);
            return counts;
        }
        std::vector<std::int64_t> scratch(bufs.numThreads(), -1);
        count_pivots(0, iterations, counts, scratch);
        return counts;
    }

    common::ThreadPool &pool = common::ThreadPool::shared(workers);
    std::vector<Counts> partial(pool.numThreads(),
                                Counts(outcomes_.size(), 0));
    if (blocked) {
        std::vector<detail::BlockScratch> block_scratch(
            pool.numThreads());
        pool.parallelFor(
            0, iterations, /*grain=*/256,
            [&](std::size_t shard, std::int64_t begin,
                std::int64_t end) {
                countPivotRangeBlocked(begin, end, iterations,
                                       iterations, bufs, mode,
                                       partial[shard], nullptr,
                                       block_scratch[shard]);
            });
        return mergeCounts(partial, outcomes_.size());
    }
    std::vector<std::vector<std::int64_t>> scratch(
        pool.numThreads(),
        std::vector<std::int64_t>(bufs.numThreads(), -1));
    pool.parallelFor(
        0, iterations, /*grain=*/256,
        [&](std::size_t shard, std::int64_t begin, std::int64_t end) {
            count_pivots(begin, end, partial[shard], scratch[shard]);
        });
    return mergeCounts(partial, outcomes_.size());
}

Counts
HeuristicCounter::count(
    std::int64_t iterations,
    const std::vector<std::vector<Value>> &bufs, CountMode mode,
    std::size_t threads) const
{
    return count(iterations, RawBufs(bufs), mode, threads);
}

} // namespace perple::core
