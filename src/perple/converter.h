/**
 * @file
 * The PerpLE Converter: litmus tests -> perpetual litmus tests.
 *
 * Following Section III-B (Table I), every store of a positive constant
 * `a` to location `mem` becomes a store of the arithmetic-sequence
 * element `k_mem * n_t + a`, where `k_mem` is the number of distinct
 * constants stored to `mem` across all threads and `n_t` the storing
 * thread's iteration index. Loads and fences are unchanged, per-thread
 * buf logging is kept, per-iteration zeroing and the per-iteration
 * barrier are removed.
 */

#ifndef PERPLE_CORE_CONVERTER_H
#define PERPLE_CORE_CONVERTER_H

#include <string>
#include <vector>

#include "litmus/outcome.h"
#include "litmus/test.h"
#include "sim/program.h"

namespace perple::core
{

/** A converted, executable perpetual litmus test. */
struct PerpetualTest
{
    /** The original test (conditions, names, structure). */
    litmus::Test original;

    /** Affine-store loop bodies, one per thread. */
    std::vector<sim::SimProgram> programs;

    /** k_mem per location (sequence stride). */
    std::vector<int> strides;

    /** Load-performing threads, ascending (the frame dimensions). */
    std::vector<litmus::ThreadId> frameThreads;

    /** Loads per iteration (r_t) for every thread. */
    std::vector<int> loadsPerIteration;
};

/**
 * Check whether @p test with @p outcomes of interest is convertible.
 *
 * A test is not convertible when any outcome of interest constrains a
 * final shared-memory value (perpetual runs can only inspect shared
 * memory after all iterations, Section V-C), or when it has no
 * load-performing thread (there would be no frames to analyze).
 *
 * @param test The candidate test (validated).
 * @param outcomes Outcomes of interest.
 * @param[out] reason Human-readable explanation when not convertible.
 * @return True when convertible.
 */
bool isConvertible(const litmus::Test &test,
                   const std::vector<litmus::Outcome> &outcomes,
                   std::string &reason);

/**
 * Convert @p test to its perpetual counterpart.
 *
 * @param test The original test; must be validated and convertible
 *        with respect to its target outcome.
 * @return The converted test.
 * @throws UserError when the test is not convertible.
 */
PerpetualTest convert(const litmus::Test &test);

} // namespace perple::core

#endif // PERPLE_CORE_CONVERTER_H
