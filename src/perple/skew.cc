#include "perple/skew.h"

#include "common/error.h"

namespace perple::core
{

stats::Histogram
measureSkew(const PerpetualTest &perpetual, const sim::RunResult &run,
            std::int64_t iterations)
{
    const litmus::Test &test = perpetual.original;
    stats::Histogram histogram;

    // Writer lookup: for each location, the stores (thread, constant).
    struct StoreInfo
    {
        litmus::ThreadId thread;
        litmus::Value offset;
    };
    std::vector<std::vector<StoreInfo>> stores_by_loc(
        static_cast<std::size_t>(test.numLocations()));
    for (litmus::LocationId loc = 0; loc < test.numLocations(); ++loc)
        for (const auto &[thread, index] : test.storesTo(loc))
            stores_by_loc[static_cast<std::size_t>(loc)].push_back(
                {thread,
                 test.threads[static_cast<std::size_t>(thread)]
                     .instructions[static_cast<std::size_t>(index)]
                     .value});

    for (litmus::ThreadId t = 0; t < test.numThreads(); ++t) {
        const auto ut = static_cast<std::size_t>(t);
        const auto &thread = test.threads[ut];
        const auto r_t = static_cast<std::int64_t>(thread.numLoads());
        if (r_t == 0)
            continue;

        // Map load slots to their locations.
        std::vector<litmus::LocationId> slot_loc;
        for (const auto &instr : thread.instructions)
            if (instr.readsRegister())
                slot_loc.push_back(instr.loc);

        const auto &buf = run.bufs[ut];
        for (std::int64_t n = 0; n < iterations; ++n) {
            for (std::int64_t slot = 0; slot < r_t; ++slot) {
                const litmus::Value val =
                    buf[static_cast<std::size_t>(r_t * n + slot)];
                if (val == 0)
                    continue; // Initial value: no writer iteration.
                const auto loc = slot_loc[static_cast<std::size_t>(
                    slot)];
                const std::int64_t k =
                    perpetual.strides[static_cast<std::size_t>(loc)];
                for (const StoreInfo &store :
                     stores_by_loc[static_cast<std::size_t>(loc)]) {
                    const std::int64_t d = val - store.offset;
                    if (d < 0 || d % k != 0)
                        continue;
                    if (store.thread == t)
                        break; // Own forwarding: no skew signal.
                    histogram.add(n - d / k);
                    break;
                }
            }
        }
    }
    return histogram;
}

} // namespace perple::core
