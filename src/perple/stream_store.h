/**
 * @file
 * Buf storage for the streaming pipeline (perple::stream).
 *
 * The epoch-pipelined analyzer needs the run's buf arrays to stay
 * randomly addressable — a COUNTH substitution can derive a partner
 * iteration arbitrarily far from its pivot under thread skew, so a
 * sliding window of recent epochs cannot guarantee bit-identity with
 * batch counting. StreamStore therefore keeps every thread's buf in
 * one contiguous region (the exact layout RawBufs and both counters
 * already consume), but the region can be file-backed: runner threads
 * write through the page cache, analyzed epochs are dropped from
 * residency, and a re-read of old data (a deferred seam pivot, the
 * post-hoc exhaustive pass, a capture writer) faults it back in from
 * disk. That is what moves the max-N ceiling from RAM to disk.
 */

#ifndef PERPLE_CORE_STREAM_STORE_H
#define PERPLE_CORE_STREAM_STORE_H

#include <cstdint>
#include <string>
#include <vector>

#include "litmus/types.h"
#include "perple/counters.h"

namespace perple::stream
{

/** One mapping holding every thread's buf region; see file comment. */
class StreamStore
{
  public:
    /**
     * Map storage for an N-iteration run.
     *
     * @param loads_per_iteration r_t per thread (0 = store-only, no
     *        region).
     * @param iterations Run length N.
     * @param spill_path When non-empty, back the mapping with this
     *        file (created, sized, and unlinked immediately, so the
     *        spill can never outlive the process); empty keeps the
     *        store in anonymous memory.
     */
    StreamStore(const std::vector<int> &loads_per_iteration,
                std::int64_t iterations, const std::string &spill_path);

    ~StreamStore();

    StreamStore(const StreamStore &) = delete;
    StreamStore &operator=(const StreamStore &) = delete;

    /** Base of thread @p t's buf (r_t × N values; null when r_t = 0). */
    litmus::Value *threadBase(std::size_t t);

    /** The store's bufs as counter input (nullptr for empty threads). */
    core::RawBufs rawBufs() const;

    /**
     * Drop the pages holding iterations [@p begin, @p end) of every
     * thread's region from residency (madvise MADV_DONTNEED, shrunk
     * inward to page boundaries). File-backed stores only — on an
     * anonymous mapping this would zero data, so it is a no-op there.
     * The data stays readable either way; later reads fault it back
     * in from the page cache or the spill file.
     */
    void releaseIterations(std::int64_t begin, std::int64_t end);

    /** Total mapped bytes (the run's full buf working set). */
    std::uint64_t
    bytes() const
    {
        return bytes_;
    }

    /** True when the store is file-backed (spillable). */
    bool
    spilled() const
    {
        return spilled_;
    }

  private:
    std::vector<int> loadsPerIteration_;
    std::int64_t iterations_ = 0;
    std::vector<std::size_t> threadOffset_; ///< Page-aligned, bytes.
    unsigned char *base_ = nullptr;
    std::uint64_t bytes_ = 0;
    bool spilled_ = false;
};

} // namespace perple::stream

#endif // PERPLE_CORE_STREAM_STORE_H
