/**
 * @file
 * Counter cross-checking: one perpetual run, every counter variant.
 *
 * The differential fuzzer (src/fuzz/) needs to compare PerpLE's
 * redundant counting paths — exhaustive vs heuristic (Algorithms 1 and
 * 2), serial vs sharded-parallel — on identical buf arrays. This entry
 * point executes a converted test once on the deterministic simulator
 * and returns the counts of all requested variants, so callers can
 * assert the two library-level invariants:
 *
 *  - bit-identity: the sharded-parallel path must equal the serial
 *    reference path for both counters and every CountMode;
 *  - heuristic subset: with a single outcome of interest and an
 *    uncapped exhaustive scan, every heuristic hit is a frame the
 *    exhaustive counter also counts, so COUNTH <= COUNT per outcome.
 */

#ifndef PERPLE_CORE_CROSSCHECK_H
#define PERPLE_CORE_CROSSCHECK_H

#include <cstdint>
#include <vector>

#include "litmus/outcome.h"
#include "litmus/test.h"
#include "perple/counters.h"
#include "sim/config.h"

namespace perple::core
{

/** Configuration of one crossCheckCounters() run. */
struct CrossCheckConfig
{
    /** Simulator seed; the run is deterministic in it. */
    std::uint64_t seed = 1;

    /** Iterations N; the exhaustive scan is uncapped (N^{T_L}). */
    std::int64_t iterations = 1000;

    /** Frame-sharing semantics for all counts. */
    CountMode mode = CountMode::FirstMatch;

    /** Also produce the sharded-parallel counts? */
    bool parallel = true;

    /** Worker threads for the parallel counts (0 = hardware). */
    std::size_t parallelThreads = 4;

    /**
     * Also pit the kernel engines: produce serial counts under
     * KernelMode::Interpreter and KernelMode::Specialized for both
     * counters (the fuzzer's kernel-identity oracle).
     */
    bool kernelPit = false;

    /** Kernel engine of the default serial/parallel counts. */
    KernelMode kernelMode = KernelMode::Auto;

    /** Simulator knobs (seed and addressMode are overridden). */
    sim::MachineConfig machine;
};

/** All counter variants over one run's bufs. */
struct CrossCheckReport
{
    std::int64_t iterations = 0;

    Counts exhaustiveSerial;
    Counts heuristicSerial;

    /** Present only when CrossCheckConfig::parallel was set. */
    Counts exhaustiveParallel;
    Counts heuristicParallel;

    /** Present only when CrossCheckConfig::kernelPit was set. */
    Counts exhaustiveInterpreter;
    Counts heuristicInterpreter;
    Counts exhaustiveSpecialized;
    Counts heuristicSpecialized;

    /** Serial and parallel counts are bit-identical for both counters. */
    bool
    parallelIdentical() const
    {
        return exhaustiveSerial == exhaustiveParallel &&
               heuristicSerial == heuristicParallel;
    }

    /**
     * The specialized batched kernels and the scalar interpreter
     * produce bit-identical counts for both counters (kernelPit runs
     * only).
     */
    bool
    kernelIdentical() const
    {
        return exhaustiveInterpreter == exhaustiveSpecialized &&
               heuristicInterpreter == heuristicSpecialized;
    }
};

/**
 * Run @p test's perpetual form once on the simulator and count
 * @p outcomes with every requested counter variant.
 *
 * @param test A validated, convertible test.
 * @param outcomes Outcomes of interest (register conditions).
 * @param config Run + count configuration.
 */
CrossCheckReport
crossCheckCounters(const litmus::Test &test,
                   const std::vector<litmus::Outcome> &outcomes,
                   const CrossCheckConfig &config);

} // namespace perple::core

#endif // PERPLE_CORE_CROSSCHECK_H
