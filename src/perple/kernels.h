/**
 * @file
 * Shape-specialized, batch-evaluated counting kernels — the layer
 * between the counters' pivot/frame loops and the compiled-atom
 * interpreter (compiled_atoms.h).
 *
 * The interpreter walks a runtime std::vector<CompiledAtom> per frame,
 * re-deciding rf-vs-fr, residue and frame-vs-existential per atom per
 * frame. Those decisions depend only on the outcome's *shape*, which
 * comes from a tiny grammar: numAtoms <= kMaxKernelAtoms,
 * numExistential in {0, 1, 2}, allFrameIndexed, anyResidue. This layer
 * template-instantiates one evaluation kernel per shape, so the atom
 * loop unrolls completely with every kind branch resolved at compile
 * time, and evaluates frames in fixed-width *blocks* with
 * structure-of-arrays scratch: the per-lane inner loops are
 * branch-free and autovectorizable, and stride == 1 sequences (the
 * common case) skip the div/mod decode entirely.
 *
 * Shapes outside the instantiated set fall back to the existing
 * interpreter, per lane, inside the same block loop; the selection is
 * logged per outcome in KernelReport. KernelMode::Interpreter disables
 * the layer entirely (the counters keep their original scalar loops),
 * which is what lets the cross-check and fuzz oracles pit the two
 * implementations against each other.
 *
 * Bounded (streaming) evaluation batches too: PivotKernel reproduces
 * evaluateAtBounded's exact check order per lane — decode-failure and
 * range checks are NoMatch *before* any watermark check, watermark
 * checks happen *before* any buf read — so the tri-state NeedData
 * verdict survives batching bit-for-bit. A block containing deferred
 * pivots splits per lane (deferred lanes are excluded from counting
 * and reported back); it never flips a verdict. Lanes that are dead or
 * deferred keep clamped in-range frame indices, so the block never
 * reads at or past the watermark — required for TSan-clean streaming,
 * where memory past the watermark is concurrently written.
 */

#ifndef PERPLE_CORE_KERNELS_H
#define PERPLE_CORE_KERNELS_H

#include <cstdint>
#include <string>
#include <vector>

#include "litmus/types.h"
#include "perple/compiled_atoms.h"

namespace perple::core
{

/** Which evaluation engine the counters use. */
enum class KernelMode
{
    /**
     * Batched + specialized where any outcome's shape allows it,
     * original scalar interpreter otherwise (the default).
     */
    Auto,

    /**
     * Always run the batched block path; outcomes whose shape is
     * outside the instantiated set still evaluate via the interpreter,
     * per lane, inside the blocks.
     */
    Specialized,

    /** Original scalar interpreter loops only (the reference path). */
    Interpreter,
};

/** Stable name ("auto", "specialized", "interpreter"). */
const char *kernelModeName(KernelMode mode);

/** Parse a kernelModeName(); throws UserError on anything else. */
KernelMode kernelModeFromName(const std::string &name);

/** Which kernel each outcome got — the tentpole's selection log. */
struct KernelReport
{
    struct OutcomeEntry
    {
        /** Shape-grammar description ("atoms=4 exist=0 ..."). */
        std::string shape;

        /** A specialized template instantiation was selected. */
        bool specialized = false;
    };

    KernelMode mode = KernelMode::Auto;

    /** The batched block path is engaged under `mode`. */
    bool batched = false;

    /** Lanes per block of the batched path. */
    std::size_t batchWidth = 0;

    /** Per-outcome selection, aligned with the counter's outcomes. */
    std::vector<OutcomeEntry> outcomes;

    std::size_t specializedCount() const;

    /** One line: "specialized 3/4 outcomes (batch=16, mode=auto)". */
    std::string summary() const;
};

namespace detail
{

/** Largest atom count the shape grammar instantiates. */
constexpr int kMaxKernelAtoms = 8;

/** Largest existential count the shape grammar instantiates. */
constexpr int kMaxKernelExistential = 2;

/** Default lanes per block (tunable per counter, tested at 1/4/W). */
constexpr std::size_t kKernelBatchWidth = 32;

/** Hard cap on lanes per block (sizes kernel-local scratch). */
constexpr std::size_t kMaxKernelBatchWidth = 64;

/** The shape grammar a CompiledOutcome is dispatched on. */
struct KernelShape
{
    int numAtoms = 0;
    int numExistential = 0;

    /** Every atom's index variable is a frame thread. */
    bool allFrameIndexed = true;

    /** Some atom carries a congruence (residue) check. */
    bool anyResidue = false;

    /** Inside the instantiated set? */
    bool specializable() const;

    /** "atoms=4 exist=1 mixed-index residue" etc. */
    std::string describe() const;
};

/** Compute the dispatch shape of a compiled outcome. */
KernelShape shapeOf(const CompiledOutcome &outcome);

/**
 * A block atom-evaluation kernel: evaluates @p width lanes of frame
 * assignments at once. lanes[t] points at the per-thread row of
 * iteration indices (only frame-thread rows are read, and every lane —
 * dead or alive — must hold an in-range index so reads stay safe).
 * match is in/out: the kernel ANDs each lane's verdict into match[w],
 * so callers pass 1 for lanes to evaluate and 0 for lanes already
 * settled or dead — an all-zero block returns immediately, which is
 * the scalar path's early exit at block granularity.
 */
using AtomBlockFn = void (*)(const CompiledAtom *atoms,
                             const std::int64_t *const *lanes,
                             std::size_t width, std::int64_t iterations,
                             const litmus::Value *const *bufs,
                             std::uint8_t *match);

/**
 * The specialized kernel for @p shape, or nullptr when the shape is
 * outside the instantiated set (fall back to the interpreter).
 */
AtomBlockFn specializedKernelFor(const KernelShape &shape);

/**
 * Structure-of-arrays scratch for one worker's block evaluation.
 * Rows are per-thread (frames / over) or per-lane; resize() is cheap
 * to call repeatedly with the same geometry.
 */
struct BlockScratch
{
    std::size_t numThreads = 0;
    std::size_t width = 0;

    /** Frame-index rows, numThreads x width (SoA). */
    std::vector<std::int64_t> frames;

    /** Row base pointers into `frames`, one per thread. */
    std::vector<const std::int64_t *> lanePtrs;

    /** "Index at/past the watermark" flags, numThreads x width. */
    std::vector<std::uint8_t> over;

    /** Per-lane alive flag (no NoMatch yet). */
    std::vector<std::uint8_t> ok;

    /** Per-lane decoded source values. */
    std::vector<std::int64_t> vals;

    /** Per-lane decoded iteration indices. */
    std::vector<std::int64_t> idx;

    /** Per-thread gather row for the interpreter fallback. */
    std::vector<std::int64_t> gather;

    void resize(std::size_t num_threads, std::size_t w);

    std::int64_t *
    frameRow(std::size_t t)
    {
        return frames.data() + t * width;
    }

    std::uint8_t *
    overRow(std::size_t t)
    {
        return over.data() + t * width;
    }
};

/**
 * Frame-block evaluation of one compiled outcome: the specialized
 * kernel when the shape allows, the interpreter per lane otherwise.
 * Used by the exhaustive counter, whose lanes are explicit frames.
 */
class AtomKernel
{
  public:
    AtomKernel() = default;
    explicit AtomKernel(const CompiledOutcome &compiled);

    bool
    specialized() const
    {
        return fn_ != nullptr;
    }

    const KernelShape &
    shape() const
    {
        return shape_;
    }

    /**
     * Evaluate @p width lanes; every lane of every frame-thread row in
     * @p scratch must hold an index in [0, iterations). match is
     * in/out (AND semantics, see AtomBlockFn): lanes entering 0 are
     * skipped.
     */
    void evalBlock(const CompiledOutcome &compiled, BlockScratch &scratch,
                   std::size_t width, std::int64_t iterations,
                   const litmus::Value *const *bufs,
                   std::uint8_t *match) const;

  private:
    KernelShape shape_;
    AtomBlockFn fn_ = nullptr;
};

/** One flattened resolution step (mirrors ResolutionStep, POD-ish). */
struct DecodeStep
{
    std::int32_t targetThread = -1;
    std::int32_t sourceThread = -1;

    /** Thread owning the decoded buf (source.value.thread). */
    std::int32_t bufThread = -1;
    std::int32_t loadsPerIteration = 0;
    std::int32_t slot = 0;
    bool rfDecode = false;
    bool fallback = false;
    std::int64_t stride = 1;
    std::int64_t offset = 0;

    /** log2(stride) when stride is a power of two, else -1 (lets the
     *  rf decode use shift/mask instead of div/mod). */
    std::int32_t strideShift = -1;
    std::vector<std::int64_t> frOffsets;
};

/**
 * Tri-state pivot-block evaluation of one heuristic plan: batched
 * value->iteration decode (SoA, branch-hoisted per step) followed by
 * the outcome's atom kernel. Per lane, the verdict is bit-identical
 * to HeuristicCounter::evaluateAtBounded — including which lanes
 * defer (NeedData) under a watermark.
 */
class PivotKernel
{
  public:
    PivotKernel() = default;

    /**
     * @param compiled The plan's skip-folded compiled outcome (only
     *        its shape is captured; the outcome itself is passed again
     *        to evalPivotBlock so the kernel stays copy-safe).
     * @param steps Flattened resolution steps, in plan order.
     * @param pivot The plan's pivot thread.
     * @param frame_threads The test's frame threads.
     */
    PivotKernel(const CompiledOutcome &compiled,
                std::vector<DecodeStep> steps, std::int32_t pivot,
                std::vector<std::int32_t> frame_threads);

    bool
    specialized() const
    {
        return atoms_.specialized();
    }

    const KernelShape &
    shape() const
    {
        return atoms_.shape();
    }

    /**
     * Evaluate pivots [n0, n0 + width). On return, lane w is Match iff
     * match[w], NeedData iff need[w] (never both), NoMatch otherwise.
     * Requires n0 + width <= available <= iterations (the caller's
     * pivot range lies below the watermark). Never reads any buf at or
     * past `available`.
     *
     * @p active (optional, may be nullptr = all lanes) masks lanes
     * the caller still cares about: inactive lanes skip all work and
     * come back with match == need == 0. FirstMatch callers pass the
     * not-yet-settled mask so later outcomes only pay for undecided
     * lanes — the batched equivalent of the scalar else-if chain.
     */
    void evalPivotBlock(const CompiledOutcome &compiled,
                        BlockScratch &scratch, std::int64_t n0,
                        std::size_t width, std::int64_t iterations,
                        std::int64_t available,
                        const litmus::Value *const *bufs,
                        std::uint8_t *match, std::uint8_t *need,
                        const std::uint8_t *active = nullptr) const;

  private:
    AtomKernel atoms_;
    std::vector<DecodeStep> steps_;
    std::int32_t pivot_ = -1;
    std::vector<std::int32_t> frameThreads_;
};

} // namespace detail

} // namespace perple::core

#endif // PERPLE_CORE_KERNELS_H
