/**
 * @file
 * Witness extraction: explain *why* a frame satisfied a perpetual
 * outcome, in the paper's happens-before vocabulary.
 *
 * When a conformance campaign counts a forbidden target outcome, the
 * raw tally is not actionable; an engineer needs the concrete frame,
 * the loaded values, which iteration of which thread wrote each value
 * (decodable thanks to the arithmetic sequences, Section III-B), and
 * the rf/fr relations that the outcome's inequalities assert. This
 * module renders exactly that.
 */

#ifndef PERPLE_CORE_WITNESS_H
#define PERPLE_CORE_WITNESS_H

#include <string>
#include <vector>

#include "perple/converter.h"
#include "perple/perpetual_outcome.h"
#include "sim/result.h"

namespace perple::core
{

/**
 * Render a human-readable explanation of @p frame satisfying
 * @p outcome.
 *
 * @param perpetual The converted test that produced @p run.
 * @param outcome The perpetual outcome the frame satisfies.
 * @param frame One iteration index per frame thread, in
 *        outcome.frameThreads order (as returned by
 *        findFirstFrame()).
 * @param run The finished run (bufs in paper layout).
 * @return Multi-line explanation text.
 */
std::string explainFrame(const PerpetualTest &perpetual,
                         const PerpetualOutcome &outcome,
                         const std::vector<std::int64_t> &frame,
                         const sim::RunResult &run);

/**
 * Identify the writer of @p value at @p loc: which thread's store
 * instruction and which iteration produced it.
 *
 * @param perpetual The converted test (strides, store inventory).
 * @param loc The loaded location.
 * @param value The loaded value.
 * @param[out] thread Writer thread.
 * @param[out] iteration Writer iteration.
 * @return False for value 0 (the initial value) or non-sequence
 *         values.
 */
bool decodeWriter(const PerpetualTest &perpetual,
                  litmus::LocationId loc, litmus::Value value,
                  litmus::ThreadId &thread, std::int64_t &iteration);

} // namespace perple::core

#endif // PERPLE_CORE_WITNESS_H
