#include "perple/harness.h"

#include <algorithm>
#include <exception>
#include <memory>
#include <thread>

#include "common/error.h"
#include "litmus/writer.h"
#include "perple/perpetual_outcome.h"
#include "runtime/native_runner.h"
#include "sim/machine.h"
#include "trace/writer.h"

namespace perple::core
{

namespace
{

/** Joins the capture writer even when a counting phase throws. */
struct ThreadJoiner
{
    std::thread &thread;

    ~ThreadJoiner()
    {
        if (thread.joinable())
            thread.join();
    }
};

} // namespace

HarnessResult
runPerpetual(const PerpetualTest &perpetual, std::int64_t iterations,
             const std::vector<litmus::Outcome> &outcomes,
             const HarnessConfig &config)
{
    checkUser(iterations > 0,
              "perpetual run needs a positive iteration count");

    HarnessResult result;
    result.iterations = iterations;

    // --- Capture setup: identity metadata is known before the run,
    // so the file header and Meta section go out up front and only
    // the bufs remain for the overlapped writer below. ---
    std::unique_ptr<trace::TraceWriter> writer;
    if (!config.capturePath.empty()) {
        result.timing.start("capture");
        trace::TraceMeta meta;
        meta.testName = perpetual.original.name;
        meta.testText = litmus::writeTest(perpetual.original);
        meta.strides = perpetual.strides;
        meta.loadsPerIteration = perpetual.loadsPerIteration;
        meta.machine = config.machine;
        trace::WriterOptions options;
        options.bufEncoding = config.captureEncoding;
        writer = std::make_unique<trace::TraceWriter>(
            config.capturePath, meta, options);
        result.timing.stop();
    }

    // --- Test execution: one launch sync, then free-running. ---
    result.timing.start("exec");
    if (config.backend == Backend::Simulator) {
        sim::MachineConfig machine_config = config.machine;
        machine_config.seed = config.seed;
        machine_config.addressMode = sim::AddressMode::Shared;
        sim::Machine machine(perpetual.programs,
                             perpetual.original.numLocations(),
                             machine_config);
        machine.runFree(iterations, 0, result.run);
    } else {
        runtime::NativeConfig native;
        native.mode = runtime::SyncMode::None;
        native.perIterationInstances = false;
        result.run = runtime::runNative(
            perpetual.programs, perpetual.original.numLocations(),
            iterations, native);
    }
    result.timing.stop();

    // --- Capture body: encoding + I/O of the buf arrays runs on a
    // dedicated thread while the counters scan the same (now
    // immutable) bufs, so an overlapped capture is nearly free. ---
    std::thread capture_thread;
    std::exception_ptr capture_error;
    ThreadJoiner joiner{capture_thread};
    if (writer != nullptr) {
        result.timing.start("capture");
        capture_thread = std::thread([&] {
            try {
                trace::RunInfo info;
                info.seed = config.seed;
                info.iterations = iterations;
                info.backend = config.backend == Backend::Simulator
                                   ? "sim"
                                   : "native";
                writer->addRun(info, result.run);
                writer->finish();
            } catch (...) {
                capture_error = std::current_exception();
            }
        });
        result.timing.stop();
    }

    // --- Outcome conversion (cheap; once per set of outcomes). ---
    auto perpetual_outcomes =
        buildPerpetualOutcomes(perpetual.original, outcomes);

    // --- Counting (raw buf pointers gathered once for both). ---
    const RawBufs raw(result.run.bufs);
    if (config.runExhaustive) {
        const std::int64_t cap =
            config.exhaustiveCap > 0
                ? std::min(config.exhaustiveCap, iterations)
                : iterations;
        result.exhaustiveIterations = cap;
        ExhaustiveCounter counter(perpetual.original,
                                  perpetual_outcomes);
        result.timing.start("count-exhaustive");
        result.exhaustive = counter.count(cap, raw, config.countMode,
                                          config.analysisThreads);
        result.timing.stop();
    }
    if (config.runHeuristic) {
        HeuristicCounter counter(perpetual.original,
                                 perpetual_outcomes);
        result.timing.start("count-heuristic");
        result.heuristic = counter.count(iterations, raw,
                                         config.countMode,
                                         config.analysisThreads);
        result.timing.stop();
    }

    if (capture_thread.joinable()) {
        result.timing.start("capture");
        capture_thread.join();
        result.timing.stop();
        if (capture_error)
            std::rethrow_exception(capture_error);
        result.captureBytes = writer->bytesWritten();
    }
    return result;
}

} // namespace perple::core
