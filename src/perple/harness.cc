#include "perple/harness.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <memory>
#include <thread>

#include "common/error.h"
#include "common/strings.h"
#include "litmus/writer.h"
#include "perple/perpetual_outcome.h"
#include "perple/stream.h"
#include "runtime/native_runner.h"
#include "sim/machine.h"
#include "trace/writer.h"

namespace perple::core
{

namespace
{

/** Joins the capture writer even when a counting phase throws. */
struct ThreadJoiner
{
    std::thread &thread;

    ~ThreadJoiner()
    {
        if (thread.joinable())
            thread.join();
    }
};

/** The run's buf working set in bytes (N × Σ r_t × 8). */
std::uint64_t
projectedBufBytes(const PerpetualTest &perpetual,
                  std::int64_t iterations)
{
    std::uint64_t loads_per_iteration = 0;
    for (const int r_t : perpetual.loadsPerIteration)
        loads_per_iteration += static_cast<std::uint64_t>(r_t);
    return loads_per_iteration *
           static_cast<std::uint64_t>(iterations) *
           sizeof(litmus::Value);
}

} // namespace

void
analyzeRun(const PerpetualTest &perpetual, std::int64_t iterations,
           const std::vector<litmus::Outcome> &outcomes,
           const HarnessConfig &config, HarnessResult &result)
{
    analyzeBufs(perpetual, iterations, outcomes, config,
                RawBufs(result.run.bufs), result);
}

void
analyzeBufs(const PerpetualTest &perpetual, std::int64_t iterations,
            const std::vector<litmus::Outcome> &outcomes,
            const HarnessConfig &config, const RawBufs &raw,
            HarnessResult &result)
{
    // --- Outcome conversion (cheap; once per set of outcomes). ---
    auto perpetual_outcomes =
        buildPerpetualOutcomes(perpetual.original, outcomes);

    bool run_exhaustive = config.runExhaustive;
    if (run_exhaustive) {
        const std::int64_t cap =
            config.exhaustiveCap > 0
                ? std::min(config.exhaustiveCap, iterations)
                : iterations;
        result.exhaustiveIterations = cap;
        ExhaustiveCounter counter(perpetual.original,
                                  perpetual_outcomes);
        counter.setKernelMode(config.kernelMode);
        if (!result.kernelReport)
            result.kernelReport = counter.kernelReport();

        // Budget check: time a probe prefix, extrapolate the
        // O(cap^{T_L}) full scan, and degrade to COUNTH rather than
        // stall when the projection blows the budget. Small caps are
        // cheaper to run than to probe.
        const std::int64_t probe = 64;
        if (config.countTimeBudgetSeconds > 0 && cap > 4 * probe) {
            const int t_l = perpetual.original.numLoadThreads();
            WallTimer probe_timer;
            (void)counter.count(probe, raw, config.countMode,
                                config.analysisThreads);
            const double probe_seconds =
                std::max(probe_timer.elapsedSeconds(), 1e-7);
            const double scale = static_cast<double>(cap) /
                                 static_cast<double>(probe);
            const double projected =
                probe_seconds * std::pow(scale, t_l);
            if (projected > config.countTimeBudgetSeconds) {
                run_exhaustive = false;
                result.exhaustiveIterations = 0;
                result.exhaustiveDowngraded = true;
                result.downgradeReason = format(
                    "exhaustive COUNT over %lld iterations (T_L=%d) "
                    "projected past the %gs budget; downgraded to "
                    "COUNTH",
                    static_cast<long long>(cap), t_l,
                    config.countTimeBudgetSeconds);
            }
        }
        if (run_exhaustive) {
            result.timing.start("count-exhaustive");
            result.exhaustive =
                counter.count(cap, raw, config.countMode,
                              config.analysisThreads);
            result.timing.stop();
        }
    }
    if ((config.runHeuristic || result.exhaustiveDowngraded) &&
        !result.heuristic) {
        HeuristicCounter counter(perpetual.original,
                                 perpetual_outcomes);
        counter.setKernelMode(config.kernelMode);
        if (!result.kernelReport)
            result.kernelReport = counter.kernelReport();
        result.timing.start("count-heuristic");
        result.heuristic = counter.count(iterations, raw,
                                         config.countMode,
                                         config.analysisThreads);
        result.timing.stop();
    }
}

HarnessResult
runPerpetual(const PerpetualTest &perpetual, std::int64_t iterations,
             const std::vector<litmus::Outcome> &outcomes,
             const HarnessConfig &config)
{
    checkUser(iterations > 0,
              "perpetual run needs a positive iteration count");
    const bool spilled_streaming = config.streamEpochIters > 0 &&
                                   !config.streamSpillPath.empty();
    if (config.memBudgetBytes > 0 && !spilled_streaming) {
        const std::uint64_t projected =
            projectedBufBytes(perpetual, iterations);
        checkUser(
            projected <= config.memBudgetBytes,
            format("run of %lld iterations needs %llu MiB of buf "
                   "storage, over the %llu MiB budget — lower the "
                   "iteration count or raise the budget",
                   static_cast<long long>(iterations),
                   static_cast<unsigned long long>(
                       projected / (1024 * 1024)),
                   static_cast<unsigned long long>(
                       config.memBudgetBytes / (1024 * 1024))));
    }

    HarnessResult result;
    result.iterations = iterations;

    if (config.streamEpochIters > 0) {
        // The epoch-pipelined path owns execution, counting, and
        // capture end to end; see perple/stream.h and DESIGN.md §9.
        stream::runPerpetualStreaming(perpetual, iterations, outcomes,
                                      config, result);
        return result;
    }

    // --- Capture setup: identity metadata is known before the run,
    // so the file header and Meta section go out up front and only
    // the bufs remain for the overlapped writer below. ---
    std::unique_ptr<trace::TraceWriter> writer;
    if (!config.capturePath.empty()) {
        result.timing.start("capture");
        trace::TraceMeta meta;
        meta.testName = perpetual.original.name;
        meta.testText = litmus::writeTest(perpetual.original);
        meta.strides = perpetual.strides;
        meta.loadsPerIteration = perpetual.loadsPerIteration;
        meta.machine = config.machine;
        trace::WriterOptions options;
        options.bufEncoding = config.captureEncoding;
        writer = std::make_unique<trace::TraceWriter>(
            config.capturePath, meta, options);
        result.timing.stop();
    }

    // --- Test execution: one launch sync, then free-running. ---
    result.timing.start("exec");
    if (config.backend == Backend::Simulator) {
        sim::MachineConfig machine_config = config.machine;
        machine_config.seed = config.seed;
        machine_config.addressMode = sim::AddressMode::Shared;
        sim::Machine machine(perpetual.programs,
                             perpetual.original.numLocations(),
                             machine_config);
        machine.runFree(iterations, 0, result.run);
    } else {
        runtime::NativeConfig native;
        native.mode = runtime::SyncMode::None;
        native.perIterationInstances = false;
        result.run = runtime::runNative(
            perpetual.programs, perpetual.original.numLocations(),
            iterations, native);
    }
    result.timing.stop();

    // --- Capture body: encoding + I/O of the buf arrays runs on a
    // dedicated thread while the counters scan the same (now
    // immutable) bufs, so an overlapped capture is nearly free. ---
    std::thread capture_thread;
    std::exception_ptr capture_error;
    ThreadJoiner joiner{capture_thread};
    if (writer != nullptr) {
        result.timing.start("capture");
        capture_thread = std::thread([&] {
            try {
                trace::RunInfo info;
                info.seed = config.seed;
                info.iterations = iterations;
                info.backend = config.backend == Backend::Simulator
                                   ? "sim"
                                   : "native";
                writer->addRun(info, result.run);
                writer->finish();
            } catch (...) {
                capture_error = std::current_exception();
            }
        });
        result.timing.stop();
    }

    analyzeRun(perpetual, iterations, outcomes, config, result);

    if (capture_thread.joinable()) {
        result.timing.start("capture");
        capture_thread.join();
        result.timing.stop();
        if (capture_error)
            std::rethrow_exception(capture_error);
        result.captureBytes = writer->bytesWritten();
    }
    return result;
}

} // namespace perple::core
