#include "perple/harness.h"

#include <algorithm>

#include "common/error.h"
#include "perple/perpetual_outcome.h"
#include "runtime/native_runner.h"
#include "sim/machine.h"

namespace perple::core
{

HarnessResult
runPerpetual(const PerpetualTest &perpetual, std::int64_t iterations,
             const std::vector<litmus::Outcome> &outcomes,
             const HarnessConfig &config)
{
    checkUser(iterations > 0,
              "perpetual run needs a positive iteration count");

    HarnessResult result;
    result.iterations = iterations;

    // --- Test execution: one launch sync, then free-running. ---
    result.timing.start("exec");
    if (config.backend == Backend::Simulator) {
        sim::MachineConfig machine_config = config.machine;
        machine_config.seed = config.seed;
        machine_config.addressMode = sim::AddressMode::Shared;
        sim::Machine machine(perpetual.programs,
                             perpetual.original.numLocations(),
                             machine_config);
        machine.runFree(iterations, 0, result.run);
    } else {
        runtime::NativeConfig native;
        native.mode = runtime::SyncMode::None;
        native.perIterationInstances = false;
        result.run = runtime::runNative(
            perpetual.programs, perpetual.original.numLocations(),
            iterations, native);
    }
    result.timing.stop();

    // --- Outcome conversion (cheap; once per set of outcomes). ---
    auto perpetual_outcomes =
        buildPerpetualOutcomes(perpetual.original, outcomes);

    // --- Counting (raw buf pointers gathered once for both). ---
    const RawBufs raw(result.run.bufs);
    if (config.runExhaustive) {
        const std::int64_t cap =
            config.exhaustiveCap > 0
                ? std::min(config.exhaustiveCap, iterations)
                : iterations;
        result.exhaustiveIterations = cap;
        ExhaustiveCounter counter(perpetual.original,
                                  perpetual_outcomes);
        result.timing.start("count-exhaustive");
        result.exhaustive = counter.count(cap, raw, config.countMode,
                                          config.analysisThreads);
        result.timing.stop();
    }
    if (config.runHeuristic) {
        HeuristicCounter counter(perpetual.original,
                                 perpetual_outcomes);
        result.timing.start("count-heuristic");
        result.heuristic = counter.count(iterations, raw,
                                         config.countMode,
                                         config.analysisThreads);
        result.timing.stop();
    }
    return result;
}

} // namespace perple::core
