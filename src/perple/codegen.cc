#include "perple/codegen.h"

#include <algorithm>
#include <cctype>

#include "common/error.h"
#include "common/strings.h"
#include "litmus/writer.h"
#include "perple/counters.h"
#include "perple/kernels.h"
#include "perple/perpetual_outcome.h"

namespace perple::core
{

using litmus::Outcome;
using litmus::ThreadId;

std::string
identifierFor(const std::string &test_name)
{
    std::string out;
    for (const char c : test_name) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            out += c;
        else
            out += '_';
    }
    if (out.empty() ||
        std::isdigit(static_cast<unsigned char>(out.front())))
        out.insert(out.begin(), 't');
    return out;
}

// ---------------------------------------------------------------------
// Assembly emission
// ---------------------------------------------------------------------

std::string
emitThreadAssembly(const PerpetualTest &perpetual, ThreadId thread)
{
    const litmus::Test &test = perpetual.original;
    checkUser(thread >= 0 && thread < test.numThreads(),
              "thread id out of range");

    const std::string name = identifierFor(test.name);
    const std::string fn = format("%s_thread%d", name.c_str(), thread);
    const sim::SimProgram &program =
        perpetual.programs[static_cast<std::size_t>(thread)];
    const int r_t = program.loadsPerIteration;

    std::string out;
    out += format("/* PerpLE perpetual test '%s', thread %d.\n",
                  test.name.c_str(), thread);
    out += " *\n";
    out += format(" * void %s(int64_t n_iterations, int64_t *buf,\n",
                  fn.c_str());
    out += " *                int64_t *shared);\n";
    out += " * rdi = n_iterations, rsi = buf cursor, rdx = shared\n";
    out += " * memory base; each shared location is padded to its own\n";
    out += " * 64-byte cache line. r8 holds the iteration index n.\n";
    out += " */\n";
    out += "    .text\n";
    out += format("    .globl  %s\n", fn.c_str());
    out += format("    .type   %s, @function\n", fn.c_str());
    out += format("%s:\n", fn.c_str());
    out += "    testq   %rdi, %rdi\n";
    out += format("    je      .L%s_done\n", fn.c_str());
    out += "    xorq    %r8, %r8                /* n = 0 */\n";
    out += format(".L%s_loop:\n", fn.c_str());

    for (std::size_t i = 0; i < program.ops.size(); ++i) {
        const sim::SimOp &op = program.ops[i];
        switch (op.kind) {
          case litmus::OpKind::Store: {
            const auto &loc_name =
                test.locations[static_cast<std::size_t>(op.loc)];
            out += format(
                "    /* (i_%d%zu): [%s] <- %lld*n + %lld */\n", thread,
                i, loc_name.c_str(),
                static_cast<long long>(op.value.stride),
                static_cast<long long>(op.value.offset));
            if (op.value.stride == 1) {
                out += format("    leaq    %lld(%%r8), %%rax\n",
                              static_cast<long long>(op.value.offset));
            } else {
                out += format("    imulq   $%lld, %%r8, %%rax\n",
                              static_cast<long long>(op.value.stride));
                out += format("    addq    $%lld, %%rax\n",
                              static_cast<long long>(op.value.offset));
            }
            out += format("    movq    %%rax, %d(%%rdx)\n",
                          op.loc * 64);
            break;
          }
          case litmus::OpKind::Load: {
            const auto &loc_name =
                test.locations[static_cast<std::size_t>(op.loc)];
            out += format("    /* (i_%d%zu): reg <- [%s], buf slot %d "
                          "*/\n",
                          thread, i, loc_name.c_str(), op.slot);
            out += format("    movq    %d(%%rdx), %%rcx\n",
                          op.loc * 64);
            out += format("    movq    %%rcx, %d(%%rsi)\n",
                          op.slot * 8);
            break;
          }
          case litmus::OpKind::Fence:
            out += format("    /* (i_%d%zu): MFENCE */\n", thread, i);
            out += "    mfence\n";
            break;
          case litmus::OpKind::Rmw: {
            const auto &loc_name =
                test.locations[static_cast<std::size_t>(op.loc)];
            out += format(
                "    /* (i_%d%zu): XCHG [%s] <- %lld*n + %lld, old "
                "value to buf slot %d */\n",
                thread, i, loc_name.c_str(),
                static_cast<long long>(op.value.stride),
                static_cast<long long>(op.value.offset), op.slot);
            if (op.value.stride == 1) {
                out += format("    leaq    %lld(%%r8), %%rax\n",
                              static_cast<long long>(op.value.offset));
            } else {
                out += format("    imulq   $%lld, %%r8, %%rax\n",
                              static_cast<long long>(op.value.stride));
                out += format("    addq    $%lld, %%rax\n",
                              static_cast<long long>(op.value.offset));
            }
            out += format("    xchgq   %%rax, %d(%%rdx)\n",
                          op.loc * 64);
            out += format("    movq    %%rax, %d(%%rsi)\n",
                          op.slot * 8);
            break;
          }
        }
    }

    out += "    /* iteration end: advance buf cursor and n */\n";
    if (r_t > 0)
        out += format("    addq    $%d, %%rsi\n", r_t * 8);
    out += "    incq    %r8\n";
    out += "    cmpq    %rdi, %r8\n";
    out += format("    jb      .L%s_loop\n", fn.c_str());
    out += format(".L%s_done:\n", fn.c_str());
    out += "    ret\n";
    out += format("    .size   %s, .-%s\n", fn.c_str(), fn.c_str());
    return out;
}

// ---------------------------------------------------------------------
// C counter emission
// ---------------------------------------------------------------------

namespace
{

/** "n_0" / "q_2" for an atom's index variable. */
std::string
indexVarName(const Atom &atom)
{
    return format("%s_%d", atom.indexIsFrame ? "n" : "q",
                  atom.indexThread);
}

/** "buf_0[1 * n_0 + 0]" for a buf access with index variable @p var. */
std::string
bufExpr(const BufAccess &access, const std::string &var)
{
    return format("buf_%d[%d * %s + %d]", access.thread,
                  access.loadsPerIteration, var.c_str(), access.slot);
}

/** The shared helper functions and header of every generated file. */
std::string
filePrologue(const litmus::Test &test, const char *which)
{
    std::string out;
    out += format("/* PerpLE %s outcome counter for test '%s'.\n",
                  which, test.name.c_str());
    out += " * Generated by the PerpLE Converter (Section V-A); do\n";
    out += " * not edit. Original test:\n *\n";
    for (const auto &line : split(litmus::writeTest(test), '\n'))
        out += " *   " + line + "\n";
    out += " */\n";
    out += "#include <stdint.h>\n\n";
    // Guarded so the exhaustive and heuristic files can be compiled
    // together in one translation unit.
    out += "#ifndef PERPLE_DIV_HELPERS\n";
    out += "#define PERPLE_DIV_HELPERS\n";
    out += "static int64_t pl_floor_div(int64_t a, int64_t b)\n";
    out += "{\n";
    out += "    return a >= 0 ? a / b : -((-a + b - 1) / b);\n";
    out += "}\n\n";
    out += "static int64_t pl_ceil_div(int64_t a, int64_t b)\n";
    out += "{\n";
    out += "    return a > 0 ? (a + b - 1) / b : -((-a) / b);\n";
    out += "}\n";
    out += "#endif /* PERPLE_DIV_HELPERS */\n\n";
    return out;
}

/** Parameter list "(int64_t N, int64_t n_0, ..., const int64_t ...)" */
std::string
poutParams(const std::vector<ThreadId> &frame_threads,
           bool pivot_only, ThreadId pivot)
{
    std::string params = "int64_t N";
    if (pivot_only) {
        params += format(", int64_t n_%d", pivot);
    } else {
        for (const ThreadId t : frame_threads)
            params += format(", int64_t n_%d", t);
    }
    for (const ThreadId t : frame_threads)
        params += format(", const int64_t *buf_%d", t);
    return params;
}

/**
 * Emit the body lines checking @p outcome's atoms, skipping the ones
 * flagged in @p skip (HeuristicCounter::skippedAtoms; empty = keep
 * everything). Existential bounds are declared and the final return
 * verifies them.
 */
std::string
emitAtomChecks(const PerpetualOutcome &outcome,
               const std::vector<bool> &skip)
{
    std::string body;
    for (const ThreadId q : outcome.existentialThreads)
        body += format("    int64_t q_%d_lo = 0, q_%d_hi = N - 1;\n", q,
                       q);
    body += "    int64_t v;\n";

    for (std::size_t i = 0; i < outcome.atoms.size(); ++i) {
        const Atom &atom = outcome.atoms[i];
        if (!skip.empty() && skip[i])
            continue;
        const std::string frame_var =
            format("n_%d", atom.value.thread);
        body += format("    v = %s;\n",
                       bufExpr(atom.value, frame_var).c_str());
        const long long k = atom.stride;
        const long long c = atom.offset;
        if (atom.kind == Atom::Kind::ReadsAtOrAfter) {
            if (atom.checkResidue)
                body += format("    if (v < %lld || (v - %lld) %% %lld "
                               "!= 0) return 0;\n",
                               c, c, k);
            if (atom.indexIsFrame) {
                body += format("    if (!(v >= %lld * %s + %lld)) "
                               "return 0;\n",
                               k, indexVarName(atom).c_str(), c);
            } else {
                body += format(
                    "    { int64_t ub = pl_floor_div(v - %lld, %lld); "
                    "if (ub < q_%d_hi) q_%d_hi = ub; }\n",
                    c, k, atom.indexThread, atom.indexThread);
            }
        } else {
            if (atom.indexIsFrame) {
                body += format("    if (!(v <= %lld * %s + %lld)) "
                               "return 0;\n",
                               k, indexVarName(atom).c_str(), c - 1);
            } else {
                body += format(
                    "    { int64_t lb = pl_ceil_div(v - %lld, %lld); "
                    "if (lb > q_%d_lo) q_%d_lo = lb; }\n",
                    c - 1, k, atom.indexThread, atom.indexThread);
            }
        }
    }

    std::string ret = "    return 1";
    for (const ThreadId q : outcome.existentialThreads)
        ret += format(" && q_%d_lo <= q_%d_hi", q, q);
    body += ret + ";\n";
    return body;
}

} // namespace

std::string
emitExhaustiveCounterC(const PerpetualTest &perpetual,
                       const std::vector<Outcome> &outcomes)
{
    const litmus::Test &test = perpetual.original;
    const std::string name = identifierFor(test.name);
    const auto perpetual_outcomes =
        buildPerpetualOutcomes(test, outcomes);
    const auto frame_threads = test.loadThreads();

    std::string out = filePrologue(test, "exhaustive");

    for (std::size_t o = 0; o < perpetual_outcomes.size(); ++o) {
        const PerpetualOutcome &po = perpetual_outcomes[o];
        out += format("/* p_out_%zu: original outcome %s\n", o,
                      po.originalText.c_str());
        out += format(" * perpetual: %s */\n",
                      po.describe(test).c_str());
        out += format("static int p_out_%zu(%s)\n", o,
                      poutParams(frame_threads, false, -1).c_str());
        out += "{\n    (void)N;\n";
        out += emitAtomChecks(po, {});
        out += "}\n\n";
    }

    // COUNT (Algorithm 1).
    out += format("void %s_count(int64_t N", name.c_str());
    for (const ThreadId t : frame_threads)
        out += format(", const int64_t *buf_%d", t);
    out += ", uint64_t *counts)\n{\n";
    std::string indent = "    ";
    for (const ThreadId t : frame_threads) {
        out += indent +
               format("for (int64_t n_%d = 0; n_%d < N; n_%d++) {\n", t,
                      t, t);
        indent += "    ";
    }
    for (std::size_t o = 0; o < perpetual_outcomes.size(); ++o) {
        std::string args = "N";
        for (const ThreadId t : frame_threads)
            args += format(", n_%d", t);
        for (const ThreadId t : frame_threads)
            args += format(", buf_%d", t);
        out += indent +
               format("%sif (p_out_%zu(%s)) counts[%zu]++;\n",
                      o == 0 ? "" : "else ", o, args.c_str(), o);
    }
    for (std::size_t d = 0; d < frame_threads.size(); ++d) {
        indent.resize(indent.size() - 4);
        out += indent + "}\n";
    }
    out += "}\n";
    return out;
}

std::string
emitHeuristicCounterC(const PerpetualTest &perpetual,
                      const std::vector<Outcome> &outcomes)
{
    const litmus::Test &test = perpetual.original;
    const std::string name = identifierFor(test.name);
    auto perpetual_outcomes = buildPerpetualOutcomes(test, outcomes);
    const auto frame_threads = test.loadThreads();
    const HeuristicCounter planner(test, perpetual_outcomes);

    std::string out = filePrologue(test, "heuristic");

    for (std::size_t o = 0; o < perpetual_outcomes.size(); ++o) {
        const PerpetualOutcome &po = planner.outcomes()[o];
        const ThreadId pivot = planner.pivotThread(o);
        out += format("/* p_out_h_%zu: original outcome %s\n", o,
                      po.originalText.c_str());
        out += format(" * %s\n", planner.describePlan(o).c_str());
        // The shape the in-library kernel layer would dispatch on —
        // documentation for readers comparing generated C against the
        // batched engine (DESIGN.md §10).
        const detail::KernelShape shape = detail::shapeOf(
            detail::compileOutcome(po, planner.skippedAtoms(o)));
        out += format(" * kernel shape: %s (%s) */\n",
                      shape.describe().c_str(),
                      shape.specializable() ? "specialized"
                                            : "interpreter fallback");
        out += format("static int p_out_h_%zu(%s)\n", o,
                      poutParams(frame_threads, true, pivot).c_str());
        out += "{\n";

        // Resolve the remaining frame indices from loaded values.
        for (const ResolutionStep &step : planner.planSteps(o)) {
            out += format("    int64_t n_%d;\n", step.targetThread);
            if (step.fallback) {
                out += format("    n_%d = n_%d; /* fallback */\n",
                              step.targetThread, pivot);
            } else {
                const std::string src = bufExpr(
                    step.source, format("n_%d", step.sourceThread));
                out += format("    { int64_t val = %s;\n", src.c_str());
                if (step.rfDecode) {
                    out += format(
                        "      int64_t d = val - %lld;\n"
                        "      if (d < 0 || d %% %lld != 0) return 0;\n"
                        "      n_%d = d / %lld; }\n",
                        static_cast<long long>(step.offset),
                        static_cast<long long>(step.stride),
                        step.targetThread,
                        static_cast<long long>(step.stride));
                } else {
                    out += format("      if (val == 0) { n_%d = 0; }\n",
                                  step.targetThread);
                    out += format("      else { n_%d = -1;\n",
                                  step.targetThread);
                    for (const auto a : step.frOffsets) {
                        out += format(
                            "        if (n_%d < 0 && val >= %lld && "
                            "(val - %lld) %% %lld == 0) n_%d = (val - "
                            "%lld) / %lld + 1;\n",
                            step.targetThread,
                            static_cast<long long>(a),
                            static_cast<long long>(a),
                            static_cast<long long>(step.stride),
                            step.targetThread,
                            static_cast<long long>(a),
                            static_cast<long long>(step.stride));
                    }
                    out += format("        if (n_%d < 0) return 0; "
                                  "}\n    }\n",
                                  step.targetThread);
                }
                if (step.rfDecode) {
                    // Closing brace already emitted above.
                }
            }
            out += format("    if (n_%d < 0 || n_%d >= N) return 0;\n",
                          step.targetThread, step.targetThread);
        }

        out += emitAtomChecks(po, planner.skippedAtoms(o));
        out += "}\n\n";
    }

    // COUNTH (Algorithm 2). The loop variable is passed to each
    // p_out_h as that outcome's pivot index.
    out += format("void %s_count_h(int64_t N", name.c_str());
    for (const ThreadId t : frame_threads)
        out += format(", const int64_t *buf_%d", t);
    out += ", uint64_t *counts)\n{\n";
    out += "    for (int64_t n = 0; n < N; n++) {\n";
    for (std::size_t o = 0; o < perpetual_outcomes.size(); ++o) {
        std::string args = "N, n";
        for (const ThreadId t : frame_threads)
            args += format(", buf_%d", t);
        out += format("        %sif (p_out_h_%zu(%s)) counts[%zu]++;\n",
                      o == 0 ? "" : "else ", o, args.c_str(), o);
    }
    out += "    }\n}\n";
    return out;
}

std::string
emitReadsParams(const PerpetualTest &perpetual)
{
    std::string out;
    for (std::size_t t = 0; t < perpetual.loadsPerIteration.size(); ++t)
        out += format("t%zu_reads = %d\n", t,
                      perpetual.loadsPerIteration[t]);
    return out;
}

} // namespace perple::core
