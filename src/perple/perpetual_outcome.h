/**
 * @file
 * Perpetual outcomes: litmus outcomes mapped onto frames.
 *
 * This implements the 4-step outcome-conversion procedure of Section
 * IV-A, generalized from the paper's worked sb example to the whole
 * corpus. Each register condition `reg == v` of the original outcome,
 * where `reg` is loaded from location `mem` with stride `k = k_mem`,
 * becomes one or more *atoms* over symbolic iteration indices:
 *
 *  - v != 0 (an rf edge from the unique store S of v, owned by thread
 *    w): the load may return any sequence element at or after the one
 *    S writes in iteration idx_w, i.e.
 *        VAL >= k * idx_w + v   with   VAL ≡ v (mod k);
 *  - v == 0 (fr edges to every store S_j of constant a_j to mem, owned
 *    by thread w_j): the load returns something older than each frame
 *    store, i.e. for all j
 *        VAL <= k * idx_{w_j} + a_j - 1.
 *
 * Indices of load-performing threads are *frame variables* (enumerated
 * by the counters); indices of store-only threads are *existential
 * variables* — a frame satisfies the outcome iff some in-range value of
 * each existential index satisfies its interval constraints. For the sb
 * test this reduces to exactly the four p_out functions of Figure 6; for
 * mp-style tests (T_L = 1) the existential elimination reproduces the
 * store-thread substitution discussed in Section IV-B.
 */

#ifndef PERPLE_CORE_PERPETUAL_OUTCOME_H
#define PERPLE_CORE_PERPETUAL_OUTCOME_H

#include <cstdint>
#include <string>
#include <vector>

#include "litmus/outcome.h"
#include "litmus/test.h"

namespace perple::core
{

/** A reference to one buf entry: bufs[thread][r_thread * n + slot]. */
struct BufAccess
{
    litmus::ThreadId thread = -1;

    /** Loads per iteration of that thread (r_t). */
    int loadsPerIteration = 0;

    /** The load's position within the iteration stripe. */
    int slot = -1;
};

/** One inequality (plus optional congruence) over iteration indices. */
struct Atom
{
    /** Direction of the inequality. */
    enum class Kind
    {
        /** rf: VAL >= k * idx + offset (and VAL ≡ offset mod k). */
        ReadsAtOrAfter,

        /** fr: VAL <= k * idx + offset - 1. */
        ReadsBefore,
    };

    Kind kind = Kind::ReadsAtOrAfter;

    /** The loaded value this atom constrains. */
    BufAccess value;

    /** Thread owning the index variable idx. */
    litmus::ThreadId indexThread = -1;

    /** True when idx is a frame variable (load-performing thread). */
    bool indexIsFrame = false;

    /** Sequence stride of the load's location (k_mem >= 1). */
    std::int64_t stride = 1;

    /** Sequence offset (the original stored constant). */
    std::int64_t offset = 0;

    /** Congruence check (rf atoms only). */
    bool checkResidue = false;

    /** Index of the original condition this atom derives from. */
    int conditionIndex = -1;
};

/** The perpetual form of one outcome of interest. */
struct PerpetualOutcome
{
    /** Human-readable original form (e.g. "0:EAX=0 /\\ 1:EAX=0"). */
    std::string originalText;

    /** Compact register-value label ("00"), for Figure 13 axes. */
    std::string label;

    /** All atoms of the conjunction. */
    std::vector<Atom> atoms;

    /** Frame threads (load-performing), ascending; shared per test. */
    std::vector<litmus::ThreadId> frameThreads;

    /** Store-only threads with existential indices, ascending. */
    std::vector<litmus::ThreadId> existentialThreads;

    /** Number of original conditions (atom conditionIndex range). */
    int numConditions = 0;

    /** Pretty inequality rendering in the style of Figure 6, step 4. */
    std::string describe(const litmus::Test &test) const;
};

/**
 * Build the perpetual form of @p outcome for @p test (Section IV-A).
 *
 * @param test The original test (validated, convertible).
 * @param outcome A register-condition outcome.
 * @return The perpetual outcome.
 * @throws UserError for memory conditions or unmatched values.
 */
PerpetualOutcome buildPerpetualOutcome(const litmus::Test &test,
                                       const litmus::Outcome &outcome);

/** Build perpetual forms for several outcomes of interest at once. */
std::vector<PerpetualOutcome>
buildPerpetualOutcomes(const litmus::Test &test,
                       const std::vector<litmus::Outcome> &outcomes);

} // namespace perple::core

#endif // PERPLE_CORE_PERPETUAL_OUTCOME_H
