/**
 * @file
 * The exhaustive and heuristic outcome counters (Sections IV-A, IV-B).
 *
 * Both counters take the buf arrays of a finished perpetual run and
 * return how many times each perpetual outcome of interest occurred.
 *
 * ExhaustiveCounter is Algorithm 1: it enumerates all N^{T_L} frames
 * (one iteration index per load-performing thread) and counts at most
 * one outcome per frame, first match in list order.
 *
 * HeuristicCounter is Algorithm 2: it loops over the pivot thread's N
 * iterations only, deriving every other frame index from the loaded
 * values themselves (the paper's step-5 substitution: a loaded value
 * identifies the iteration that stored it, so the frame containing that
 * iteration is the one most likely to exhibit interleaving). Frame
 * threads not reachable through any substitution chain fall back to the
 * pivot index (documented in DESIGN.md; the Table II suite only needs
 * the fallback for rfi015-style shapes where load threads communicate
 * exclusively through store-only threads).
 */

#ifndef PERPLE_CORE_COUNTERS_H
#define PERPLE_CORE_COUNTERS_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "litmus/test.h"
#include "perple/compiled_atoms.h"
#include "perple/kernels.h"
#include "perple/perpetual_outcome.h"
#include "sim/result.h"

namespace perple::core
{

/** Counts per outcome of interest, aligned with the input list. */
using Counts = std::vector<std::uint64_t>;

/**
 * Raw buf base pointers of a finished run (empty threads map to
 * nullptr). Collect once per run and reuse across repeated count() /
 * findFirstFrame() calls instead of paying the pointer gather on
 * every call.
 */
class RawBufs
{
  public:
    explicit RawBufs(const std::vector<std::vector<litmus::Value>> &bufs)
    {
        raw_.reserve(bufs.size());
        for (const auto &buf : bufs)
            raw_.push_back(buf.empty() ? nullptr : buf.data());
    }

    /**
     * Wrap precollected base pointers (empty threads as nullptr) —
     * how trace::TraceReader exposes an on-disk capture's buffers to
     * the counters without copying them.
     */
    explicit RawBufs(std::vector<const litmus::Value *> raw)
        : raw_(std::move(raw))
    {}

    const litmus::Value *const *
    data() const
    {
        return raw_.data();
    }

    /** Number of threads (buf arrays) in the run. */
    std::size_t
    numThreads() const
    {
        return raw_.size();
    }

  private:
    std::vector<const litmus::Value *> raw_;
};

/** How multiple outcomes of interest share a frame. */
enum class CountMode
{
    /**
     * Algorithms 1 and 2: an else-if chain counts at most one outcome
     * per frame / pivot iteration, first match in list order.
     */
    FirstMatch,

    /**
     * Every outcome is evaluated on every frame independently (the
     * paper's Figure 13 convention: "PerpLE heuristic samples 1k
     * frames per outcome").
     */
    Independent,
};

/**
 * Tri-state result of bounded (streaming) heuristic evaluation, where
 * only the first `available` iterations of every buf are readable.
 */
enum class BoundedEval
{
    Match,   ///< Decided: the outcome holds at this pivot.
    NoMatch, ///< Decided: the outcome does not hold at this pivot.

    /**
     * Undecidable yet: a deciding frame index lands at or past the
     * watermark (in [available, iterations)), so the values that
     * would settle the answer have not been published. Retry the
     * pivot at a higher watermark; at available == iterations this
     * can never be returned (out-of-range indices are NoMatch first).
     */
    NeedData,
};

/** Algorithm 1: examine every frame. */
class ExhaustiveCounter
{
  public:
    /**
     * @param test The original test (frame structure).
     * @param outcomes Perpetual outcomes of interest, in match order.
     */
    ExhaustiveCounter(const litmus::Test &test,
                      std::vector<PerpetualOutcome> outcomes);

    /**
     * Count occurrences over all frames of an N-iteration run.
     *
     * The frame scan shards the outermost frame-thread's index range
     * over @p threads workers (ThreadPool::shared); each worker
     * accumulates into a private Counts merged at the end, so the
     * result is bit-identical to the serial path for every thread
     * count and CountMode.
     *
     * @param iterations N.
     * @param bufs Buf arrays (paper layout; see sim::RunResult).
     * @param mode Frame-sharing semantics.
     * @param threads Analysis threads (0 = hardware concurrency,
     *        1 = the serial reference path).
     * @return Occurrences per outcome.
     */
    Counts count(std::int64_t iterations,
                 const std::vector<std::vector<litmus::Value>> &bufs,
                 CountMode mode = CountMode::FirstMatch,
                 std::size_t threads = 1) const;

    /** As above over precollected raw buf pointers. */
    Counts count(std::int64_t iterations, const RawBufs &bufs,
                 CountMode mode = CountMode::FirstMatch,
                 std::size_t threads = 1) const;

    /**
     * Find the first frame (odometer order) satisfying outcome
     * @p outcome_index, for witness extraction.
     *
     * @return Frame indices in frameThreads order, or nullopt.
     */
    std::optional<std::vector<std::int64_t>>
    findFirstFrame(std::size_t outcome_index, std::int64_t iterations,
                   const std::vector<std::vector<litmus::Value>> &bufs)
        const;

    /**
     * Evaluate one outcome on one explicit frame (exposed for tests
     * and for the brute-force oracle).
     *
     * @param outcome_index Which outcome of interest.
     * @param frame One iteration index per frame thread, in
     *        frameThreads order.
     * @param iterations N (bounds the existential indices).
     * @param bufs Buf arrays.
     */
    bool evaluate(std::size_t outcome_index,
                  const std::vector<std::int64_t> &frame,
                  std::int64_t iterations,
                  const std::vector<std::vector<litmus::Value>> &bufs)
        const;

    const std::vector<PerpetualOutcome> &
    outcomes() const
    {
        return outcomes_;
    }

    /**
     * Select the evaluation engine (kernels.h). Auto (the default)
     * engages the batched specialized path when any outcome's shape
     * allows it; Interpreter keeps the original scalar loops — the
     * reference path the cross-check and fuzz oracles pit against.
     * Counts are bit-identical across modes by construction.
     */
    void
    setKernelMode(KernelMode mode)
    {
        kernelMode_ = mode;
    }

    /** Lanes per batched block, clamped to [1, kMaxKernelBatchWidth]. */
    void setKernelBatchWidth(std::size_t width);

    /** Which kernel each outcome got under the current mode. */
    KernelReport kernelReport() const;

  private:
    /** Scan frames whose outermost index lies in [begin, end). */
    void countRange(std::int64_t outer_begin, std::int64_t outer_end,
                    std::int64_t iterations, const RawBufs &bufs,
                    CountMode mode, Counts &counts) const;

    /**
     * countRange in kernelBatchWidth_-lane blocks over the innermost
     * frame dimension (identical counts; the frame set and match
     * order are unchanged, only the loop structure is).
     */
    void countRangeBlocked(std::int64_t outer_begin,
                           std::int64_t outer_end,
                           std::int64_t iterations, const RawBufs &bufs,
                           CountMode mode, Counts &counts,
                           detail::BlockScratch &scratch) const;

    /** The batched block path is engaged under the current mode. */
    bool useKernels() const;

    std::vector<litmus::ThreadId> frameThreads_;
    std::vector<PerpetualOutcome> outcomes_;

    /** Flattened atoms per outcome (construction-time compiled). */
    std::vector<detail::CompiledOutcome> compiled_;

    /** Per-outcome block kernels, aligned with compiled_. */
    std::vector<detail::AtomKernel> kernels_;

    KernelMode kernelMode_ = KernelMode::Auto;
    std::size_t kernelBatchWidth_ = detail::kKernelBatchWidth;
};

/** One step of a heuristic resolution plan. */
struct ResolutionStep
{
    /** Frame thread whose index this step derives. */
    litmus::ThreadId targetThread = -1;

    /** Condition index consumed by the substitution, -1 for fallback. */
    int conditionIndex = -1;

    /** Buf access whose loaded value is decoded. */
    BufAccess source;

    /** Thread owning `source` (must already be resolved). */
    litmus::ThreadId sourceThread = -1;

    /** rf decode (idx = (VAL - offset) / stride) vs fr decode. */
    bool rfDecode = false;

    /** Sequence stride of the decoded location. */
    std::int64_t stride = 1;

    /** rf decode: the condition value v. */
    std::int64_t offset = 0;

    /**
     * fr decode: (stored constant) candidates of the target thread's
     * stores to the location, for residue matching.
     */
    std::vector<std::int64_t> frOffsets;

    /** True when this step is the pivot-index fallback. */
    bool fallback = false;
};

/** Algorithm 2: one candidate frame per pivot iteration. */
class HeuristicCounter
{
  public:
    /**
     * Build the per-outcome resolution plans.
     *
     * @param test The original test.
     * @param outcomes Perpetual outcomes of interest, in match order.
     */
    HeuristicCounter(const litmus::Test &test,
                     std::vector<PerpetualOutcome> outcomes);

    /**
     * Count occurrences; linear in @p iterations. The pivot-iteration
     * range is sharded over @p threads workers with private partial
     * counts (0 = hardware concurrency, 1 = serial reference path);
     * results are bit-identical for every thread count.
     */
    Counts count(std::int64_t iterations,
                 const std::vector<std::vector<litmus::Value>> &bufs,
                 CountMode mode = CountMode::FirstMatch,
                 std::size_t threads = 1) const;

    /** As above over precollected raw buf pointers. */
    Counts count(std::int64_t iterations, const RawBufs &bufs,
                 CountMode mode = CountMode::FirstMatch,
                 std::size_t threads = 1) const;

    /**
     * Streaming building block: count pivot iterations [@p begin,
     * @p end) of an N-iteration run of which only the first
     * @p available iterations of every thread's buf have been
     * published (the epoch watermark). A pivot whose answer depends
     * on data at or past the watermark is appended to @p deferred
     * instead of being counted — all-or-nothing per pivot, so a
     * FirstMatch chain can never pick the wrong winner. Re-submit
     * deferred pivots at a higher watermark via
     * countDeferredPivots(); at available == iterations nothing is
     * ever deferred. Counting each pivot exactly once this way, in
     * any order and with any epoch partition, sums to exactly
     * count() of the full run (per-pivot indicators commute).
     *
     * @p counts accumulates in place (callers shard and merge).
     */
    void countPivotRangeBounded(std::int64_t begin, std::int64_t end,
                                std::int64_t iterations,
                                std::int64_t available,
                                const RawBufs &bufs, CountMode mode,
                                Counts &counts,
                                std::vector<std::int64_t> &deferred)
        const;

    /** Retry previously deferred pivots at a higher watermark. */
    void countDeferredPivots(const std::vector<std::int64_t> &pivots,
                             std::int64_t iterations,
                             std::int64_t available,
                             const RawBufs &bufs, CountMode mode,
                             Counts &counts,
                             std::vector<std::int64_t> &still_deferred)
        const;

    /**
     * Find the first pivot iteration whose resolved frame satisfies
     * outcome @p outcome_index, for witness extraction.
     *
     * @return Frame indices in frameThreads order, or nullopt.
     */
    std::optional<std::vector<std::int64_t>>
    findFirstFrame(std::size_t outcome_index, std::int64_t iterations,
                   const std::vector<std::vector<litmus::Value>> &bufs)
        const;

    /** The pivot thread chosen for @p outcome_index. */
    litmus::ThreadId pivotThread(std::size_t outcome_index) const;

    /** True when any plan needed the pivot-index fallback. */
    bool usedFallback() const;

    /**
     * Human-readable plan description (used by the code generator and
     * for documentation, mirroring Figure 8's step-5 rows).
     */
    std::string describePlan(std::size_t outcome_index) const;

    /** Resolution steps of @p outcome_index's plan, in order. */
    const std::vector<ResolutionStep> &
    planSteps(std::size_t outcome_index) const;

    /** Conditions consumed by substitutions for @p outcome_index. */
    const std::vector<int> &
    consumedConditions(std::size_t outcome_index) const;

    /**
     * Atoms of @p outcome_index (aligned with
     * outcomes()[outcome_index].atoms) the substitution satisfies by
     * construction, i.e. the ones evaluation skips. Only the atoms
     * whose index thread a step resolved qualify — a consumed `=0`
     * condition keeps its fr atoms over every *other* store thread,
     * otherwise COUNTH could accept frames COUNT rejects.
     */
    const std::vector<bool> &
    skippedAtoms(std::size_t outcome_index) const;

    const std::vector<PerpetualOutcome> &
    outcomes() const
    {
        return outcomes_;
    }

    /**
     * Select the evaluation engine (kernels.h); see
     * ExhaustiveCounter::setKernelMode. The tri-state bounded
     * (streaming) semantics survive batching: a block containing
     * deferred pivots splits per lane, it never flips a verdict.
     */
    void
    setKernelMode(KernelMode mode)
    {
        kernelMode_ = mode;
    }

    /** Lanes per batched block, clamped to [1, kMaxKernelBatchWidth]. */
    void setKernelBatchWidth(std::size_t width);

    /** Which kernel each outcome got under the current mode. */
    KernelReport kernelReport() const;

  private:
    struct Plan
    {
        litmus::ThreadId pivot = -1;
        std::vector<ResolutionStep> steps;
        std::vector<int> consumedConditions;

        /** Per-atom skip flags; see skippedAtoms(). */
        std::vector<bool> skipAtoms;

        /**
         * The outcome's atoms minus the substitution-satisfied ones,
         * flattened (the skip is folded out here).
         */
        detail::CompiledOutcome compiled;
    };

    /** Evaluate outcome @p o at pivot iteration @p n. */
    bool evaluateAt(std::size_t o, std::int64_t n,
                    std::int64_t iterations,
                    const litmus::Value *const *raw,
                    std::vector<std::int64_t> &frame_scratch) const;

    /**
     * evaluateAt with only the first @p available iterations of every
     * buf readable; never reads at or past the watermark. Match and
     * NoMatch agree with batch evaluateAt by construction: every
     * batch check runs in the same order, and NeedData is returned
     * only where batch would have read unpublished data.
     */
    BoundedEval evaluateAtBounded(
        std::size_t o, std::int64_t n, std::int64_t iterations,
        std::int64_t available, const litmus::Value *const *raw,
        std::vector<std::int64_t> &frame_scratch) const;

    /**
     * Decide one pivot under a watermark: updates @p counts when the
     * pivot is decidable and returns true; returns false (counting
     * nothing) when it must be retried at a higher watermark.
     */
    bool countPivotBounded(std::int64_t n, std::int64_t iterations,
                           std::int64_t available,
                           const litmus::Value *const *raw,
                           CountMode mode, Counts &counts,
                           std::vector<std::int64_t> &frame_scratch,
                           std::vector<std::size_t> &match_scratch)
        const;

    /**
     * countPivotRangeBounded in kernelBatchWidth_-lane blocks. Per
     * pivot, the Match / NoMatch / NeedData verdict is bit-identical
     * to the scalar path; deferred pivots land in @p deferred in
     * ascending order. @p deferred may be nullptr only when
     * available == iterations (nothing can defer).
     */
    void countPivotRangeBlocked(std::int64_t begin, std::int64_t end,
                                std::int64_t iterations,
                                std::int64_t available,
                                const RawBufs &bufs, CountMode mode,
                                Counts &counts,
                                std::vector<std::int64_t> *deferred,
                                detail::BlockScratch &scratch) const;

    /** The batched block path is engaged under the current mode. */
    bool useKernels() const;

    const litmus::Test *test_;
    std::vector<litmus::ThreadId> frameThreads_;
    std::vector<PerpetualOutcome> outcomes_;
    std::vector<Plan> plans_;

    /** Per-plan pivot-block kernels, aligned with plans_. */
    std::vector<detail::PivotKernel> kernels_;

    KernelMode kernelMode_ = KernelMode::Auto;
    std::size_t kernelBatchWidth_ = detail::kKernelBatchWidth;
};

} // namespace perple::core

#endif // PERPLE_CORE_COUNTERS_H
