/**
 * @file
 * The PerpLE Harness (Section V-B): run a perpetual litmus test for N
 * iterations (one launch synchronization, none afterwards) and count
 * the perpetual outcomes of interest with the exhaustive and/or the
 * heuristic outcome counter.
 */

#ifndef PERPLE_CORE_HARNESS_H
#define PERPLE_CORE_HARNESS_H

#include <cstdint>
#include <optional>
#include <vector>

#include "common/timing.h"
#include "litmus/outcome.h"
#include "perple/converter.h"
#include "perple/counters.h"
#include "sim/config.h"
#include "sim/result.h"
#include "trace/format.h"

namespace perple::core
{

/** Which substrate executes the perpetual test threads. */
enum class Backend
{
    Simulator, ///< The timed TSO machine (deterministic, seeded).
    Native,    ///< Real std::thread + inline-asm execution.
};

/** Harness configuration. */
struct HarnessConfig
{
    Backend backend = Backend::Simulator;
    std::uint64_t seed = 1;

    /** Run the exhaustive counter (O(N^{T_L}))? */
    bool runExhaustive = true;

    /** Run the heuristic counter (O(N))? */
    bool runHeuristic = true;

    /**
     * Iteration cap for the exhaustive counter; when N exceeds the cap
     * the exhaustive counter only examines the first `cap` iterations
     * of each thread (0 = no cap). Keeps T_L = 3 tests tractable.
     */
    std::int64_t exhaustiveCap = 0;

    /** Frame-sharing semantics for both counters. */
    CountMode countMode = CountMode::FirstMatch;

    /**
     * Worker threads for the outcome counters: 0 = hardware
     * concurrency, 1 = the serial reference path. Counts are
     * bit-identical for every value (private per-shard partials,
     * ordered merge), so this is purely a speed knob; the
     * count-exhaustive / count-heuristic phases of HarnessResult
     * still report honest wall time because the sharded count()
     * blocks until every worker has finished.
     */
    std::size_t analysisThreads = 1;

    /** Simulator knobs (seed/addressMode are overridden). */
    sim::MachineConfig machine;

    /**
     * When non-empty, stream a durable `.plt` capture of the run to
     * this path (see src/trace/). The file header and test metadata
     * are written before execution starts and the buf serialization
     * runs on a dedicated writer thread overlapped with the counting
     * phases, so the "capture" entry of HarnessResult::timing reports
     * only the wall time capture actually cost the harness (setup
     * plus any end-of-run wait for the writer), not the overlapped
     * I/O.
     */
    std::string capturePath;

    /** Buf encoding of the capture (compression vs zero-copy read). */
    trace::BufEncoding captureEncoding =
        trace::BufEncoding::VarintDelta;
};

/** Harness results. */
struct HarnessResult
{
    std::int64_t iterations = 0;

    /** Per-outcome counts; present when the counter ran. */
    std::optional<Counts> exhaustive;
    std::optional<Counts> heuristic;

    /** Iterations actually examined by the exhaustive counter. */
    std::int64_t exhaustiveIterations = 0;

    /** Raw run artifact (bufs, memory, stats) for further analysis. */
    sim::RunResult run;

    /**
     * Wall time split into "exec" (test execution), "count-exhaustive"
     * and "count-heuristic" phases, plus "capture" when a trace was
     * recorded (non-overlapped capture cost only; see
     * HarnessConfig::capturePath).
     */
    PhaseTimer timing;

    /** Bytes of the written capture; 0 when none was requested. */
    std::uint64_t captureBytes = 0;

    /** Wall seconds of execution plus heuristic counting (the
     *  PerpLE-heuristic runtime the paper reports). */
    double
    heuristicSeconds() const
    {
        return timing.phaseSeconds("exec") +
               timing.phaseSeconds("count-heuristic");
    }

    /** Wall seconds of execution plus exhaustive counting. */
    double
    exhaustiveSeconds() const
    {
        return timing.phaseSeconds("exec") +
               timing.phaseSeconds("count-exhaustive");
    }
};

/**
 * Run @p perpetual for @p iterations iterations and count @p outcomes.
 *
 * @param perpetual A converted test (Converter output).
 * @param iterations N.
 * @param outcomes Outcomes of interest (register conditions; converted
 *        internally via buildPerpetualOutcomes).
 * @param config Harness configuration.
 */
HarnessResult runPerpetual(const PerpetualTest &perpetual,
                           std::int64_t iterations,
                           const std::vector<litmus::Outcome> &outcomes,
                           const HarnessConfig &config);

} // namespace perple::core

#endif // PERPLE_CORE_HARNESS_H
