/**
 * @file
 * The PerpLE Harness (Section V-B): run a perpetual litmus test for N
 * iterations (one launch synchronization, none afterwards) and count
 * the perpetual outcomes of interest with the exhaustive and/or the
 * heuristic outcome counter.
 */

#ifndef PERPLE_CORE_HARNESS_H
#define PERPLE_CORE_HARNESS_H

#include <cstdint>
#include <optional>
#include <vector>

#include "common/timing.h"
#include "litmus/outcome.h"
#include "perple/converter.h"
#include "perple/counters.h"
#include "sim/config.h"
#include "sim/result.h"
#include "trace/format.h"

namespace perple::core
{

/** Which substrate executes the perpetual test threads. */
enum class Backend
{
    Simulator, ///< The timed TSO machine (deterministic, seeded).
    Native,    ///< Real std::thread + inline-asm execution.
};

/** Harness configuration. */
struct HarnessConfig
{
    Backend backend = Backend::Simulator;
    std::uint64_t seed = 1;

    /** Run the exhaustive counter (O(N^{T_L}))? */
    bool runExhaustive = true;

    /** Run the heuristic counter (O(N))? */
    bool runHeuristic = true;

    /**
     * Iteration cap for the exhaustive counter; when N exceeds the cap
     * the exhaustive counter only examines the first `cap` iterations
     * of each thread (0 = no cap). Keeps T_L = 3 tests tractable.
     */
    std::int64_t exhaustiveCap = 0;

    /** Frame-sharing semantics for both counters. */
    CountMode countMode = CountMode::FirstMatch;

    /**
     * Evaluation engine of the counters (kernels.h): Auto engages the
     * shape-specialized batched kernels where possible, Interpreter
     * forces the original scalar loops (the reference path), and
     * Specialized forces batching even for fallback shapes. Counts
     * are bit-identical across all three — this knob exists for
     * performance and for pitting the engines in the oracles.
     */
    KernelMode kernelMode = KernelMode::Auto;

    /**
     * Worker threads for the outcome counters: 0 = hardware
     * concurrency, 1 = the serial reference path. Counts are
     * bit-identical for every value (private per-shard partials,
     * ordered merge), so this is purely a speed knob; the
     * count-exhaustive / count-heuristic phases of HarnessResult
     * still report honest wall time because the sharded count()
     * blocks until every worker has finished.
     */
    std::size_t analysisThreads = 1;

    /** Simulator knobs (seed/addressMode are overridden). */
    sim::MachineConfig machine;

    /**
     * When non-empty, stream a durable `.plt` capture of the run to
     * this path (see src/trace/). The file header and test metadata
     * are written before execution starts and the buf serialization
     * runs on a dedicated writer thread overlapped with the counting
     * phases, so the "capture" entry of HarnessResult::timing reports
     * only the wall time capture actually cost the harness (setup
     * plus any end-of-run wait for the writer), not the overlapped
     * I/O.
     */
    std::string capturePath;

    /** Buf encoding of the capture (compression vs zero-copy read). */
    trace::BufEncoding captureEncoding =
        trace::BufEncoding::VarintDelta;

    /**
     * Wall-clock budget (seconds) for the exhaustive counting phase;
     * 0 = unlimited. When set, the harness times a small probe of the
     * exhaustive scan, extrapolates the full O(cap^{T_L}) cost, and —
     * rather than silently stalling for hours on an unlucky test —
     * gracefully degrades: the exhaustive COUNT is skipped, the
     * heuristic COUNTH runs in its place (even when runHeuristic is
     * off), and HarnessResult::exhaustiveDowngraded records the
     * decision. The probe's measured time never leaks into results or
     * reports, so degraded runs stay deterministic to compare.
     */
    double countTimeBudgetSeconds = 0;

    /**
     * Memory budget (bytes) for the run's buf arrays (N × Σ r_t × 8,
     * the analysis working set); 0 = unlimited. Exceeding it fails
     * fast with a UserError before execution instead of OOM-killing
     * the process mid-run. A spilled streaming run (streamEpochIters
     * > 0 with a streamSpillPath) is exempt: its buf working set
     * lives on disk, not in RAM.
     */
    std::uint64_t memBudgetBytes = 0;

    /**
     * Epoch size (iterations) of the streaming pipeline; 0 = classic
     * batch mode (execute everything, then count). When positive, the
     * run executes epoch by epoch while COUNTH drains published
     * epochs concurrently on the shared thread pool — merged counts
     * are bit-identical to batch COUNTH of the same capture (see
     * perple::stream and DESIGN.md §9). The exhaustive counter, when
     * requested, still runs post-hoc over the completed store.
     */
    std::int64_t streamEpochIters = 0;

    /**
     * Streaming pipeline depth in epochs: how far execution may run
     * ahead of analysis before backpressure pauses it. Bounds the
     * unanalyzed working set to streamRingDepth × streamEpochIters
     * iterations.
     */
    std::size_t streamRingDepth = 4;

    /**
     * When non-empty, back the streaming buf store with this file
     * (created, sized and unlinked up front) instead of anonymous
     * memory, and actively drop analyzed epochs from residency: peak
     * RSS stays near streamRingDepth × streamEpochIters while max N
     * becomes disk-bound. Ignored in batch mode.
     */
    std::string streamSpillPath;
};

/** Observability of one streaming-pipeline run. */
struct StreamRunStats
{
    /** Epochs the pipeline published and analyzed. */
    std::int64_t epochs = 0;

    /** Epoch size used (streamEpochIters clamped to N). */
    std::int64_t epochIters = 0;

    /**
     * Pivot iterations deferred at least once because a deciding
     * partner index lay past the current watermark (epoch-seam
     * crossings); each was retried and decided at a later watermark,
     * so deferrals cost latency, never correctness.
     */
    std::int64_t deferredSeamPivots = 0;

    /** Largest deferred backlog observed after any epoch. */
    std::int64_t peakDeferredBacklog = 0;

    /** Bytes of the run's buf store (RAM, or disk when spilled). */
    std::uint64_t storeBytes = 0;

    /** True when the store was file-backed (streamSpillPath). */
    bool spilled = false;
};

/** Harness results. */
struct HarnessResult
{
    std::int64_t iterations = 0;

    /** Per-outcome counts; present when the counter ran. */
    std::optional<Counts> exhaustive;
    std::optional<Counts> heuristic;

    /** Iterations actually examined by the exhaustive counter. */
    std::int64_t exhaustiveIterations = 0;

    /** Raw run artifact (bufs, memory, stats) for further analysis. */
    sim::RunResult run;

    /**
     * Wall time split into "exec" (test execution), "count-exhaustive"
     * and "count-heuristic" phases, plus "capture" when a trace was
     * recorded (non-overlapped capture cost only; see
     * HarnessConfig::capturePath).
     */
    PhaseTimer timing;

    /** Bytes of the written capture; 0 when none was requested. */
    std::uint64_t captureBytes = 0;

    /**
     * The exhaustive COUNT was downgraded to COUNTH because its
     * projected cost exceeded countTimeBudgetSeconds; `exhaustive` is
     * absent and `heuristic` present when this is set.
     */
    bool exhaustiveDowngraded = false;

    /** Why the downgrade happened; empty when none did. */
    std::string downgradeReason;

    /**
     * Streaming-pipeline observability; present when the run used
     * streamEpochIters > 0. In that mode `run.bufs` stays empty (the
     * buf data lives in the pipeline's store, possibly spilled to
     * disk) while `run.memory`/`run.stats` and all counts are filled
     * as usual.
     */
    std::optional<StreamRunStats> streamStats;

    /**
     * Which kernel each outcome got under config.kernelMode — from
     * the first counter the run engaged (the streaming counter of a
     * streamed run, otherwise exhaustive, otherwise heuristic).
     */
    std::optional<KernelReport> kernelReport;

    /** Wall seconds of execution plus heuristic counting (the
     *  PerpLE-heuristic runtime the paper reports). */
    double
    heuristicSeconds() const
    {
        return timing.phaseSeconds("exec") +
               timing.phaseSeconds("count-heuristic");
    }

    /** Wall seconds of execution plus exhaustive counting. */
    double
    exhaustiveSeconds() const
    {
        return timing.phaseSeconds("exec") +
               timing.phaseSeconds("count-exhaustive");
    }
};

/**
 * Run @p perpetual for @p iterations iterations and count @p outcomes.
 *
 * @param perpetual A converted test (Converter output).
 * @param iterations N.
 * @param outcomes Outcomes of interest (register conditions; converted
 *        internally via buildPerpetualOutcomes).
 * @param config Harness configuration.
 */
HarnessResult runPerpetual(const PerpetualTest &perpetual,
                           std::int64_t iterations,
                           const std::vector<litmus::Outcome> &outcomes,
                           const HarnessConfig &config);

/**
 * The counting phases of runPerpetual over an existing run artifact:
 * counts @p outcomes over @p result.run (which must already hold the
 * bufs of @p iterations iterations), honoring the counter and budget
 * knobs of @p config, and fills the counting fields and timing phases
 * of @p result. Used by runPerpetual itself and by the supervised
 * parent-side analysis of a (possibly salvaged) child run.
 */
void analyzeRun(const PerpetualTest &perpetual, std::int64_t iterations,
                const std::vector<litmus::Outcome> &outcomes,
                const HarnessConfig &config, HarnessResult &result);

/**
 * analyzeRun over raw buf base pointers instead of result.run.bufs —
 * the form the streaming pipeline (whose bufs live in a StreamStore)
 * and mmap'd capture re-analysis share. A heuristic count already
 * present in @p result (e.g. streamed online) is kept, not recomputed.
 */
void analyzeBufs(const PerpetualTest &perpetual,
                 std::int64_t iterations,
                 const std::vector<litmus::Outcome> &outcomes,
                 const HarnessConfig &config, const RawBufs &bufs,
                 HarnessResult &result);

} // namespace perple::core

#endif // PERPLE_CORE_HARNESS_H
