#include "perple/converter.h"

#include "common/error.h"
#include "litmus/validator.h"

namespace perple::core
{

bool
isConvertible(const litmus::Test &test,
              const std::vector<litmus::Outcome> &outcomes,
              std::string &reason)
{
    if (test.numLoadThreads() == 0) {
        reason = "no thread performs a load, so there are no frames to "
                 "analyze";
        return false;
    }
    for (const auto &outcome : outcomes) {
        if (outcome.hasMemoryCondition()) {
            reason = "outcome '" + outcome.toString(test) +
                     "' inspects final shared memory, which a perpetual "
                     "run cannot observe per iteration";
            return false;
        }
    }
    reason.clear();
    return true;
}

PerpetualTest
convert(const litmus::Test &test)
{
    litmus::validateOrThrow(test);
    std::string reason;
    if (!isConvertible(test, {test.target}, reason))
        fatal("test '" + test.name + "' is not convertible: " + reason);

    PerpetualTest perpetual;
    perpetual.original = test;
    perpetual.frameThreads = test.loadThreads();

    for (litmus::LocationId loc = 0; loc < test.numLocations(); ++loc)
        perpetual.strides.push_back(test.strideFor(loc));

    for (litmus::ThreadId t = 0; t < test.numThreads(); ++t) {
        // Start from the constant-store body, then widen each store's
        // operand into its arithmetic sequence: k_mem * n_t + a.
        sim::SimProgram program = sim::compileOriginalThread(test, t);
        for (auto &op : program.ops) {
            if (op.kind != litmus::OpKind::Store &&
                op.kind != litmus::OpKind::Rmw)
                continue;
            op.value.stride =
                perpetual.strides[static_cast<std::size_t>(op.loc)];
        }
        perpetual.loadsPerIteration.push_back(
            program.loadsPerIteration);
        perpetual.programs.push_back(std::move(program));
    }
    return perpetual;
}

} // namespace perple::core
