#include "perple/stream.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <exception>
#include <optional>
#include <thread>

#include "common/error.h"
#include "common/thread_pool.h"
#include "common/timing.h"
#include "litmus/writer.h"
#include "perple/epoch_ring.h"
#include "perple/perpetual_outcome.h"
#include "perple/stream_store.h"
#include "runtime/native_runner.h"
#include "sim/machine.h"
#include "trace/writer.h"

namespace perple::stream
{

EpochAnalyzer::EpochAnalyzer(const core::HeuristicCounter &counter,
                             std::int64_t iterations,
                             const core::RawBufs &bufs,
                             core::CountMode mode, std::size_t threads)
    : counter_(counter), iterations_(iterations), bufs_(bufs),
      mode_(mode), threads_(common::ThreadPool::resolveThreads(threads))
{
    checkUser(iterations > 0,
              "streaming COUNTH needs a positive iteration count");
    const std::size_t shards =
        threads_ <= 1
            ? 1
            : common::ThreadPool::shared(threads_).numThreads();
    partial_.assign(shards,
                    core::Counts(counter_.outcomes().size(), 0));
    shardDeferred_.resize(shards);
}

void
EpochAnalyzer::analyzeEpoch(std::int64_t begin, std::int64_t end)
{
    checkInternal(begin == analyzedEnd_ && end > begin &&
                      end <= iterations_,
                  "stream epochs must be contiguous and in order");
    if (threads_ <= 1) {
        counter_.countPivotRangeBounded(begin, end, iterations_, end,
                                        bufs_, mode_, partial_[0],
                                        shardDeferred_[0]);
    } else {
        common::ThreadPool::shared(threads_).parallelFor(
            begin, end, /*grain=*/256,
            [&](std::size_t shard, std::int64_t b, std::int64_t e) {
                counter_.countPivotRangeBounded(
                    b, e, iterations_, end, bufs_, mode_,
                    partial_[shard], shardDeferred_[shard]);
            });
    }

    // Retry the standing backlog at the new watermark, then absorb
    // this epoch's fresh seam deferrals into it. The backlog is tiny
    // (pivots right at the seam whose partner landed ahead), so the
    // retry runs serially into shard 0's partial.
    if (!backlog_.empty()) {
        retryScratch_.clear();
        counter_.countDeferredPivots(backlog_, iterations_, end, bufs_,
                                     mode_, partial_[0], retryScratch_);
        backlog_.swap(retryScratch_);
    }
    for (auto &fresh : shardDeferred_) {
        deferredSeamPivots_ += static_cast<std::int64_t>(fresh.size());
        backlog_.insert(backlog_.end(), fresh.begin(), fresh.end());
        fresh.clear();
    }
    peakDeferredBacklog_ =
        std::max(peakDeferredBacklog_,
                 static_cast<std::int64_t>(backlog_.size()));
    analyzedEnd_ = end;
}

core::Counts
EpochAnalyzer::finish()
{
    checkInternal(analyzedEnd_ == iterations_,
                  "stream finish() before every epoch was analyzed");
    if (!backlog_.empty()) {
        retryScratch_.clear();
        counter_.countDeferredPivots(backlog_, iterations_, iterations_,
                                     bufs_, mode_, partial_[0],
                                     retryScratch_);
        checkInternal(retryScratch_.empty(),
                      "pivot deferred at the full watermark");
        backlog_.clear();
    }
    core::Counts merged = partial_[0];
    for (std::size_t shard = 1; shard < partial_.size(); ++shard)
        for (std::size_t o = 0; o < merged.size(); ++o)
            merged[o] += partial_[shard][o];
    return merged;
}

core::Counts
countHeuristicEpochs(const core::HeuristicCounter &counter,
                     std::int64_t iterations, const core::RawBufs &bufs,
                     std::int64_t epoch_iters, core::CountMode mode,
                     std::size_t threads, core::StreamRunStats *stats)
{
    checkUser(epoch_iters > 0,
              "streaming COUNTH needs a positive epoch size");
    const std::int64_t e = std::min(epoch_iters, iterations);
    EpochAnalyzer analyzer(counter, iterations, bufs, mode, threads);
    std::int64_t epochs = 0;
    for (std::int64_t begin = 0; begin < iterations; begin += e) {
        analyzer.analyzeEpoch(begin, std::min(begin + e, iterations));
        ++epochs;
    }
    core::Counts counts = analyzer.finish();
    if (stats != nullptr) {
        stats->epochs = epochs;
        stats->epochIters = e;
        stats->deferredSeamPivots = analyzer.deferredSeamPivots();
        stats->peakDeferredBacklog = analyzer.peakDeferredBacklog();
    }
    return counts;
}

namespace
{

/** Cache-line padded progress/ceiling cell of the native pipeline. */
struct alignas(64) PaddedCell
{
    volatile std::int64_t value = 0;
};

} // namespace

void
runPerpetualStreaming(const core::PerpetualTest &perpetual,
                      std::int64_t iterations,
                      const std::vector<litmus::Outcome> &outcomes,
                      const core::HarnessConfig &config,
                      core::HarnessResult &result)
{
    const std::int64_t epoch_iters =
        std::min(config.streamEpochIters, iterations);
    checkUser(epoch_iters > 0,
              "streaming needs a positive streamEpochIters");
    checkUser(config.streamRingDepth >= 1,
              "streaming needs a positive streamRingDepth");
    const std::size_t num_threads = perpetual.programs.size();
    const std::int64_t num_epochs =
        (iterations + epoch_iters - 1) / epoch_iters;
    const bool native = config.backend == core::Backend::Native;

    StreamStore store(perpetual.loadsPerIteration, iterations,
                      config.streamSpillPath);
    const core::RawBufs raw = store.rawBufs();
    EpochRing ring(config.streamRingDepth);
    const auto ring_depth = static_cast<std::int64_t>(ring.capacity());

    // The ceiling a runner may execute below once `analyzed` epochs
    // have been drained: ring_depth epochs of run-ahead.
    const auto ceiling_for = [&](std::int64_t analyzed) {
        const std::int64_t ahead = analyzed + ring_depth;
        return ahead >= num_epochs ? iterations : ahead * epoch_iters;
    };

    // Online COUNTH only when asked; an exhaustive-only run still
    // streams (for the bounded working set) but drains without
    // counting, and analyzeBufs below does the rest post-hoc.
    std::optional<core::HeuristicCounter> counter;
    std::optional<EpochAnalyzer> analyzer;
    if (config.runHeuristic) {
        counter.emplace(perpetual.original,
                        core::buildPerpetualOutcomes(perpetual.original,
                                                     outcomes));
        counter->setKernelMode(config.kernelMode);
        result.kernelReport = counter->kernelReport();
        analyzer.emplace(*counter, iterations, raw, config.countMode,
                         config.analysisThreads);
    }

    // --- Execution side. ---
    std::exception_ptr exec_error;
    std::atomic<std::int64_t> exec_ns{0};
    std::atomic<bool> exec_done{false};
    std::vector<PaddedCell> cells;
    std::vector<volatile std::int64_t *> cell_ptrs;
    std::vector<litmus::Value *> ext_bufs;
    PaddedCell ceiling;
    std::thread exec_thread;
    std::thread publish_thread;
    if (native) {
        cells = std::vector<PaddedCell>(num_threads);
        cell_ptrs.reserve(num_threads);
        for (auto &cell : cells)
            cell_ptrs.push_back(&cell.value);
        ext_bufs.reserve(num_threads);
        for (std::size_t t = 0; t < num_threads; ++t)
            ext_bufs.push_back(store.threadBase(t));
        ceiling.value = ceiling_for(0);
    }

    WallTimer pipeline_timer;
    if (!native) {
        // The sim is single-threaded, so the epoch loop lives on one
        // executor thread: run an epoch, copy its bufs into the store,
        // publish the ticket (push blocks when the ring is full — the
        // sim side's backpressure).
        exec_thread = std::thread([&] {
            WallTimer timer;
            try {
                sim::MachineConfig machine_config = config.machine;
                machine_config.seed = config.seed;
                machine_config.addressMode = sim::AddressMode::Shared;
                sim::Machine machine(perpetual.programs,
                                     perpetual.original.numLocations(),
                                     machine_config);
                sim::RunResult scratch;
                for (std::int64_t e = 0; e < num_epochs; ++e) {
                    const std::int64_t begin = e * epoch_iters;
                    const std::int64_t end =
                        std::min(begin + epoch_iters, iterations);
                    for (auto &buf : scratch.bufs)
                        buf.clear();
                    machine.runFree(end - begin, begin, scratch);
                    for (std::size_t t = 0; t < num_threads; ++t) {
                        const auto r_t = static_cast<std::size_t>(
                            perpetual.loadsPerIteration[t]);
                        if (r_t == 0)
                            continue;
                        checkInternal(
                            scratch.bufs[t].size() ==
                                static_cast<std::size_t>(end - begin) *
                                    r_t,
                            "sim epoch produced a short buf");
                        std::memcpy(
                            store.threadBase(t) +
                                static_cast<std::size_t>(begin) * r_t,
                            scratch.bufs[t].data(),
                            scratch.bufs[t].size() *
                                sizeof(litmus::Value));
                    }
                    if (!ring.push({e, begin, end}))
                        break; // Cancelled by the analysis side.
                }
                result.run.memory = scratch.memory;
                result.run.stats = scratch.stats;
            } catch (...) {
                exec_error = std::current_exception();
            }
            exec_ns.store(timer.elapsedNs(), std::memory_order_relaxed);
            ring.close();
        });
    } else {
        // Native runner threads free-run below the iteration ceiling
        // and publish per-thread watermarks; a publisher thread turns
        // the min watermark into epoch tickets.
        exec_thread = std::thread([&] {
            WallTimer timer;
            try {
                runtime::NativeConfig native_config;
                native_config.mode = runtime::SyncMode::None;
                native_config.perIterationInstances = false;
                native_config.externalBufs = ext_bufs.data();
                native_config.progressCells = cell_ptrs.data();
                native_config.iterationCeiling = &ceiling.value;
                sim::RunResult run = runtime::runNative(
                    perpetual.programs,
                    perpetual.original.numLocations(), iterations,
                    native_config);
                result.run.memory = std::move(run.memory);
                result.run.stats = run.stats;
            } catch (...) {
                exec_error = std::current_exception();
            }
            exec_ns.store(timer.elapsedNs(), std::memory_order_relaxed);
            exec_done.store(true, std::memory_order_release);
        });
        publish_thread = std::thread([&] {
            std::int64_t next_epoch = 0;
            while (next_epoch < num_epochs) {
                // Order matters: `done` before the watermark. Observed
                // done → the watermark read below is final, so epochs
                // it still does not cover never arrive (runner threw).
                const bool done =
                    exec_done.load(std::memory_order_acquire);
                std::int64_t watermark = iterations;
                for (std::size_t t = 0; t < num_threads; ++t)
                    watermark = std::min(
                        watermark,
                        static_cast<std::int64_t>(__atomic_load_n(
                            &cells[t].value, __ATOMIC_ACQUIRE)));
                while (next_epoch < num_epochs) {
                    const std::int64_t begin = next_epoch * epoch_iters;
                    const std::int64_t end =
                        std::min(begin + epoch_iters, iterations);
                    if (watermark < end)
                        break;
                    if (!ring.push({next_epoch, begin, end})) {
                        ring.close();
                        return; // Cancelled by the analysis side.
                    }
                    ++next_epoch;
                }
                if (next_epoch >= num_epochs || done)
                    break;
                std::this_thread::yield();
            }
            ring.close();
        });
    }

    // --- Analysis side: this thread drains the ring. ---
    std::exception_ptr analysis_error;
    std::int64_t analyzed_epochs = 0;
    try {
        EpochTicket ticket;
        while (ring.pop(ticket)) {
            if (analyzer)
                analyzer->analyzeEpoch(ticket.begin, ticket.end);
            ++analyzed_epochs;
            if (native)
                __atomic_store_n(&ceiling.value,
                                 ceiling_for(analyzed_epochs),
                                 __ATOMIC_RELEASE);
            if (store.spilled() && ticket.index >= ring_depth) {
                // Epochs the pipeline has run past are cold: drop them
                // from residency so peak RSS tracks the ring, not N.
                const std::int64_t old = ticket.index - ring_depth;
                store.releaseIterations(
                    old * epoch_iters,
                    std::min((old + 1) * epoch_iters, iterations));
            }
        }
    } catch (...) {
        analysis_error = std::current_exception();
        ring.cancel();
        if (native) // Unblock runners waiting on the ceiling.
            __atomic_store_n(&ceiling.value, iterations,
                             __ATOMIC_RELEASE);
    }
    if (exec_thread.joinable())
        exec_thread.join();
    if (publish_thread.joinable())
        publish_thread.join();

    const std::int64_t exec_wall =
        exec_ns.load(std::memory_order_relaxed);
    result.timing.addNs("exec", exec_wall);
    if (analysis_error)
        std::rethrow_exception(analysis_error);
    if (exec_error)
        std::rethrow_exception(exec_error);
    checkInternal(analyzed_epochs == num_epochs,
                  "stream pipeline ended early without an error");

    // Counting overlapped execution, so only its non-overlapped tail
    // (drain after exec finished, plus the final deferred retry and
    // merge) counts toward the phase — heuristicSeconds() then reports
    // the pipeline's true end-to-end wall clock.
    if (analyzer) {
        std::int64_t count_ns = std::max<std::int64_t>(
            0, pipeline_timer.elapsedNs() - exec_wall);
        WallTimer finish_timer;
        result.heuristic = analyzer->finish();
        count_ns += finish_timer.elapsedNs();
        result.timing.addNs("count-heuristic", count_ns);
    }

    core::StreamRunStats stats;
    stats.epochs = num_epochs;
    stats.epochIters = epoch_iters;
    if (analyzer) {
        stats.deferredSeamPivots = analyzer->deferredSeamPivots();
        stats.peakDeferredBacklog = analyzer->peakDeferredBacklog();
    }
    stats.storeBytes = store.bytes();
    stats.spilled = store.spilled();
    result.streamStats = stats;

    // --- Capture: written post-run straight from the store (the data
    // is already final and contiguous), overlapped with the post-hoc
    // counting below, which only reads the same immutable store. ---
    std::thread capture_thread;
    std::exception_ptr capture_error;
    std::atomic<std::int64_t> capture_ns{0};
    if (!config.capturePath.empty()) {
        capture_thread = std::thread([&] {
            try {
                WallTimer capture_timer;
                trace::TraceMeta meta;
                meta.testName = perpetual.original.name;
                meta.testText = litmus::writeTest(perpetual.original);
                meta.strides = perpetual.strides;
                meta.loadsPerIteration = perpetual.loadsPerIteration;
                meta.machine = config.machine;
                trace::WriterOptions options;
                options.bufEncoding = config.captureEncoding;
                trace::TraceWriter writer(config.capturePath, meta,
                                          options);
                trace::RunInfo info;
                info.seed = config.seed;
                info.iterations = iterations;
                info.backend = native ? "native" : "sim";
                writer.beginRun(info);
                for (std::size_t t = 0; t < num_threads; ++t) {
                    const auto r_t = static_cast<std::size_t>(
                        perpetual.loadsPerIteration[t]);
                    writer.writeBuf(
                        r_t == 0 ? nullptr : store.threadBase(t),
                        r_t * static_cast<std::size_t>(iterations));
                }
                writer.writeMemory(result.run.memory);
                writer.writeStats(result.run.stats);
                writer.finish();
                result.captureBytes = writer.bytesWritten();
                capture_ns.store(capture_timer.elapsedNs(),
                                 std::memory_order_relaxed);
            } catch (...) {
                capture_error = std::current_exception();
            }
        });
    }

    // --- Post-hoc counting over the completed store: the exhaustive
    // COUNT when requested (with its probe/budget downgrade), and the
    // heuristic only if it did not already stream online. ---
    std::exception_ptr analyze_error;
    try {
        core::analyzeBufs(perpetual, iterations, outcomes, config, raw,
                          result);
    } catch (...) {
        analyze_error = std::current_exception();
    }
    if (capture_thread.joinable()) {
        capture_thread.join();
        result.timing.addNs("capture",
                            capture_ns.load(std::memory_order_relaxed));
    }
    if (analyze_error)
        std::rethrow_exception(analyze_error);
    if (capture_error)
        std::rethrow_exception(capture_error);
}

} // namespace perple::stream
