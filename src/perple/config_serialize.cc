#include "perple/config_serialize.h"

#include <sstream>

#include "common/error.h"
#include "common/strings.h"

namespace perple::core
{

namespace
{

/** Round-trip rendering for double-valued knobs. */
std::string
doubleToText(double value)
{
    return format("%.17g", value);
}

void
line(std::ostringstream &out, const char *key,
     const std::string &value)
{
    out << key << ' ' << value << '\n';
}

std::int64_t
parseInt(const std::string &key, const std::string &text)
{
    try {
        std::size_t used = 0;
        const long long value = std::stoll(text, &used);
        checkUser(used == text.size(),
                  format("config: trailing garbage in %s", key.c_str()));
        return value;
    } catch (const std::logic_error &) {
        fatal(format("config: malformed integer for %s", key.c_str()));
    }
}

std::uint64_t
parseUint(const std::string &key, const std::string &text)
{
    try {
        std::size_t used = 0;
        const unsigned long long value = std::stoull(text, &used);
        checkUser(used == text.size(),
                  format("config: trailing garbage in %s", key.c_str()));
        return value;
    } catch (const std::logic_error &) {
        fatal(format("config: malformed integer for %s", key.c_str()));
    }
}

double
parseDouble(const std::string &key, const std::string &text)
{
    try {
        std::size_t used = 0;
        const double value = std::stod(text, &used);
        checkUser(used == text.size(),
                  format("config: trailing garbage in %s", key.c_str()));
        return value;
    } catch (const std::logic_error &) {
        fatal(format("config: malformed number for %s", key.c_str()));
    }
}

bool
parseBool(const std::string &key, const std::string &text)
{
    if (text == "1")
        return true;
    if (text == "0")
        return false;
    fatal(format("config: %s must be 0 or 1", key.c_str()));
}

} // namespace

const char *
backendName(Backend backend)
{
    return backend == Backend::Native ? "native" : "sim";
}

Backend
backendFromName(const std::string &name)
{
    if (name == "sim")
        return Backend::Simulator;
    if (name == "native")
        return Backend::Native;
    fatal(format("unknown backend '%s' (expected sim or native)",
                 name.c_str()));
}

std::string
serializeConfig(const HarnessConfig &config)
{
    const HarnessConfig defaults;
    const sim::MachineConfig machineDefaults;
    std::ostringstream out;
    out << "perple-config v1\n";
    if (config.backend != defaults.backend)
        line(out, "backend", backendName(config.backend));
    if (config.seed != defaults.seed)
        line(out, "seed", format("%llu",
                                 static_cast<unsigned long long>(
                                     config.seed)));
    if (config.runExhaustive != defaults.runExhaustive)
        line(out, "exhaustive", config.runExhaustive ? "1" : "0");
    if (config.runHeuristic != defaults.runHeuristic)
        line(out, "heuristic", config.runHeuristic ? "1" : "0");
    if (config.exhaustiveCap != defaults.exhaustiveCap)
        line(out, "exhaustiveCap",
             format("%lld",
                    static_cast<long long>(config.exhaustiveCap)));
    if (config.countMode != defaults.countMode)
        line(out, "countMode",
             config.countMode == CountMode::Independent ? "independent"
                                                        : "first");
    if (config.countTimeBudgetSeconds !=
        defaults.countTimeBudgetSeconds)
        line(out, "countTimeBudgetSeconds",
             doubleToText(config.countTimeBudgetSeconds));
    if (config.memBudgetBytes != defaults.memBudgetBytes)
        line(out, "memBudgetBytes",
             format("%llu", static_cast<unsigned long long>(
                                config.memBudgetBytes)));
    const sim::MachineConfig &m = config.machine;
    if (m.storeBufferCapacity != machineDefaults.storeBufferCapacity)
        line(out, "machine.storeBufferCapacity",
             format("%d", m.storeBufferCapacity));
    if (m.opLatency != machineDefaults.opLatency)
        line(out, "machine.opLatency", format("%d", m.opLatency));
    if (m.drainLatencyMean != machineDefaults.drainLatencyMean)
        line(out, "machine.drainLatencyMean",
             format("%d", m.drainLatencyMean));
    if (m.stallProbability != machineDefaults.stallProbability)
        line(out, "machine.stallProbability",
             doubleToText(m.stallProbability));
    if (m.stallMeanTicks != machineDefaults.stallMeanTicks)
        line(out, "machine.stallMeanTicks",
             format("%d", m.stallMeanTicks));
    if (m.loadMissProbability != machineDefaults.loadMissProbability)
        line(out, "machine.loadMissProbability",
             doubleToText(m.loadMissProbability));
    if (m.loadMissLatencyMean != machineDefaults.loadMissLatencyMean)
        line(out, "machine.loadMissLatencyMean",
             format("%d", m.loadMissLatencyMean));
    if (m.chunkSize != machineDefaults.chunkSize)
        line(out, "machine.chunkSize",
             format("%lld", static_cast<long long>(m.chunkSize)));
    if (m.fifoStoreBuffers != machineDefaults.fifoStoreBuffers)
        line(out, "machine.fifoStoreBuffers",
             m.fifoStoreBuffers ? "1" : "0");
    if (m.fenceDrainsBuffer != machineDefaults.fenceDrainsBuffer)
        line(out, "machine.fenceDrainsBuffer",
             m.fenceDrainsBuffer ? "1" : "0");
    if (m.storeForwarding != machineDefaults.storeForwarding)
        line(out, "machine.storeForwarding",
             m.storeForwarding ? "1" : "0");
    return out.str();
}

HarnessConfig
parseConfig(const std::string &payload)
{
    HarnessConfig config;
    std::istringstream in(payload);
    std::string l;
    checkUser(std::getline(in, l) && l == "perple-config v1",
              "config: missing 'perple-config v1' header");
    while (std::getline(in, l)) {
        if (l.empty())
            continue;
        const std::size_t space = l.find(' ');
        checkUser(space != std::string::npos,
                  format("config: malformed line '%s'", l.c_str()));
        const std::string key = l.substr(0, space);
        const std::string value = l.substr(space + 1);
        if (key == "backend")
            config.backend = backendFromName(value);
        else if (key == "seed")
            config.seed = parseUint(key, value);
        else if (key == "exhaustive")
            config.runExhaustive = parseBool(key, value);
        else if (key == "heuristic")
            config.runHeuristic = parseBool(key, value);
        else if (key == "exhaustiveCap")
            config.exhaustiveCap = parseInt(key, value);
        else if (key == "countMode")
            config.countMode = value == "independent"
                                   ? CountMode::Independent
                                   : CountMode::FirstMatch;
        else if (key == "countTimeBudgetSeconds")
            config.countTimeBudgetSeconds = parseDouble(key, value);
        else if (key == "memBudgetBytes")
            config.memBudgetBytes = parseUint(key, value);
        else if (key == "machine.storeBufferCapacity")
            config.machine.storeBufferCapacity =
                static_cast<int>(parseInt(key, value));
        else if (key == "machine.opLatency")
            config.machine.opLatency =
                static_cast<int>(parseInt(key, value));
        else if (key == "machine.drainLatencyMean")
            config.machine.drainLatencyMean =
                static_cast<int>(parseInt(key, value));
        else if (key == "machine.stallProbability")
            config.machine.stallProbability = parseDouble(key, value);
        else if (key == "machine.stallMeanTicks")
            config.machine.stallMeanTicks =
                static_cast<int>(parseInt(key, value));
        else if (key == "machine.loadMissProbability")
            config.machine.loadMissProbability =
                parseDouble(key, value);
        else if (key == "machine.loadMissLatencyMean")
            config.machine.loadMissLatencyMean =
                static_cast<int>(parseInt(key, value));
        else if (key == "machine.chunkSize")
            config.machine.chunkSize = parseInt(key, value);
        else if (key == "machine.fifoStoreBuffers")
            config.machine.fifoStoreBuffers = parseBool(key, value);
        else if (key == "machine.fenceDrainsBuffer")
            config.machine.fenceDrainsBuffer = parseBool(key, value);
        else if (key == "machine.storeForwarding")
            config.machine.storeForwarding = parseBool(key, value);
        else
            fatal(format("config: unknown key '%s'", key.c_str()));
    }
    return config;
}

} // namespace perple::core
