/**
 * @file
 * Emission of the PerpLE Converter's file outputs (Section V-A):
 *
 *  - one x86-64 assembly file per test thread, containing that thread's
 *    perpetual loop body (arithmetic-sequence stores, buf logging);
 *  - a C file with the exhaustive outcome counter (COUNT, Algorithm 1)
 *    specialized to the outcomes of interest;
 *  - a C file with the heuristic outcome counter (COUNTH, Algorithm 2);
 *  - a parameters file with t0_reads .. t{T-1}_reads, the loads per
 *    iteration of each thread, which the Harness uses to size the buf
 *    arrays.
 *
 * The generated C is self-contained and compilable; the unit tests
 * compile it with the host compiler and check it agrees with the
 * in-library counters.
 */

#ifndef PERPLE_CORE_CODEGEN_H
#define PERPLE_CORE_CODEGEN_H

#include <string>
#include <vector>

#include "litmus/outcome.h"
#include "perple/converter.h"

namespace perple::core
{

/** Sanitize a test name into a C/asm identifier ("mp+fences" -> ...). */
std::string identifierFor(const std::string &test_name);

/**
 * Emit the x86-64 (AT&T syntax) perpetual loop of one thread.
 *
 * The function's C signature is
 * `void <name>_thread<t>(int64_t n_iterations, int64_t *buf,
 *  int64_t *shared)` with each shared location padded to its own cache
 * line (64-byte stride).
 *
 * @param perpetual The converted test.
 * @param thread Which thread.
 */
std::string emitThreadAssembly(const PerpetualTest &perpetual,
                               litmus::ThreadId thread);

/**
 * Emit the C source of the exhaustive outcome counter for
 * @p outcomes.
 *
 * Generated entry point:
 * `void <name>_count(int64_t N, const int64_t *buf_0, ...,
 *  uint64_t *counts)` (one buf per load-performing thread, counts
 * sized to the outcome list).
 */
std::string emitExhaustiveCounterC(
    const PerpetualTest &perpetual,
    const std::vector<litmus::Outcome> &outcomes);

/** Emit the C source of the heuristic outcome counter (COUNTH). */
std::string emitHeuristicCounterC(
    const PerpetualTest &perpetual,
    const std::vector<litmus::Outcome> &outcomes);

/** Emit the t0_reads .. t{T-1}_reads parameters file. */
std::string emitReadsParams(const PerpetualTest &perpetual);

} // namespace perple::core

#endif // PERPLE_CORE_CODEGEN_H
