#include "perple/stream_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.h"
#include "common/strings.h"

namespace perple::stream
{

namespace
{

std::size_t
pageSize()
{
    static const std::size_t page =
        static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    return page;
}

std::size_t
alignUp(std::size_t bytes, std::size_t align)
{
    return (bytes + align - 1) / align * align;
}

} // namespace

StreamStore::StreamStore(const std::vector<int> &loads_per_iteration,
                         std::int64_t iterations,
                         const std::string &spill_path)
    : loadsPerIteration_(loads_per_iteration), iterations_(iterations)
{
    checkUser(iterations > 0,
              "stream store needs a positive iteration count");
    checkUser(!loads_per_iteration.empty(),
              "stream store needs at least one thread");

    // Page-align every thread's region so per-epoch residency release
    // of one thread never touches a neighbour's data.
    const std::size_t page = pageSize();
    std::size_t offset = 0;
    threadOffset_.reserve(loads_per_iteration.size());
    for (const int r_t : loads_per_iteration) {
        threadOffset_.push_back(offset);
        const std::size_t thread_bytes =
            static_cast<std::size_t>(r_t) *
            static_cast<std::size_t>(iterations) *
            sizeof(litmus::Value);
        offset += alignUp(thread_bytes, page);
    }
    bytes_ = offset;
    if (bytes_ == 0)
        return; // Store-only test: nothing to map.

    int fd = -1;
    if (!spill_path.empty()) {
        fd = ::open(spill_path.c_str(), O_RDWR | O_CREAT | O_TRUNC,
                    0644);
        checkUser(fd >= 0,
                  format("cannot create stream spill file %s: %s",
                         spill_path.c_str(), std::strerror(errno)));
        if (::ftruncate(fd, static_cast<off_t>(bytes_)) != 0) {
            const int err = errno;
            ::close(fd);
            ::unlink(spill_path.c_str());
            checkUser(false,
                      format("cannot size stream spill file %s to "
                             "%llu bytes: %s",
                             spill_path.c_str(),
                             static_cast<unsigned long long>(bytes_),
                             std::strerror(err)));
        }
        // Unlink immediately: the mapping keeps the storage alive and
        // the spill can never be leaked past the process's lifetime.
        ::unlink(spill_path.c_str());
        spilled_ = true;
    }

    void *mapping = ::mmap(
        nullptr, bytes_, PROT_READ | PROT_WRITE,
        spilled_ ? MAP_SHARED : (MAP_PRIVATE | MAP_ANONYMOUS), fd, 0);
    if (fd >= 0)
        ::close(fd);
    checkUser(mapping != MAP_FAILED,
              format("cannot map %llu bytes of stream buf storage: %s",
                     static_cast<unsigned long long>(bytes_),
                     std::strerror(errno)));
    base_ = static_cast<unsigned char *>(mapping);
}

StreamStore::~StreamStore()
{
    if (base_ != nullptr)
        ::munmap(base_, bytes_);
}

litmus::Value *
StreamStore::threadBase(std::size_t t)
{
    checkInternal(t < loadsPerIteration_.size(),
                  "stream store thread out of range");
    if (loadsPerIteration_[t] == 0)
        return nullptr;
    return reinterpret_cast<litmus::Value *>(base_ + threadOffset_[t]);
}

core::RawBufs
StreamStore::rawBufs() const
{
    std::vector<const litmus::Value *> raw;
    raw.reserve(loadsPerIteration_.size());
    for (std::size_t t = 0; t < loadsPerIteration_.size(); ++t)
        raw.push_back(
            loadsPerIteration_[t] == 0
                ? nullptr
                : reinterpret_cast<const litmus::Value *>(
                      base_ + threadOffset_[t]));
    return core::RawBufs(std::move(raw));
}

void
StreamStore::releaseIterations(std::int64_t begin, std::int64_t end)
{
    if (!spilled_ || end <= begin)
        return; // Anonymous: DONTNEED would zero live data.
    const std::size_t page = pageSize();
    for (std::size_t t = 0; t < loadsPerIteration_.size(); ++t) {
        const auto r_t =
            static_cast<std::size_t>(loadsPerIteration_[t]);
        if (r_t == 0)
            continue;
        // Shrink inward to whole pages: a page shared with data
        // outside [begin, end) stays resident.
        const std::size_t lo = alignUp(
            static_cast<std::size_t>(begin) * r_t *
                sizeof(litmus::Value),
            page);
        const std::size_t hi = static_cast<std::size_t>(end) * r_t *
                               sizeof(litmus::Value) / page * page;
        if (hi <= lo)
            continue;
        // Best effort: failing to drop residency costs memory, not
        // correctness.
        (void)::madvise(base_ + threadOffset_[t] + lo, hi - lo,
                        MADV_DONTNEED);
    }
}

} // namespace perple::stream
