/**
 * @file
 * Bounded lock-free single-producer/single-consumer ring of epoch
 * tickets, connecting the streaming pipeline's execution side (the
 * sim epoch loop or the native watermark publisher) to its analysis
 * drainer.
 *
 * A ticket only says "iterations [begin, end) are published"; the buf
 * data itself lives in the StreamStore, so the ring never copies run
 * data. The bounded depth is the pipeline's backpressure: a producer
 * that gets streamRingDepth epochs ahead of analysis blocks in
 * push(), which either pauses the sim epoch loop directly or lets the
 * native iteration ceiling lag and throttle the runner threads.
 */

#ifndef PERPLE_CORE_EPOCH_RING_H
#define PERPLE_CORE_EPOCH_RING_H

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/error.h"

namespace perple::stream
{

/** One published epoch: iterations [begin, end) of the run. */
struct EpochTicket
{
    std::int64_t index = 0;
    std::int64_t begin = 0;
    std::int64_t end = 0;
};

/** SPSC ring; exactly one pushing and one popping thread. */
class EpochRing
{
  public:
    /** @param depth Capacity in epochs (>= 1; rounded up to 2^k). */
    explicit EpochRing(std::size_t depth)
    {
        checkUser(depth >= 1, "epoch ring needs a positive depth");
        std::size_t capacity = 1;
        while (capacity < depth)
            capacity <<= 1;
        slots_.resize(capacity);
        mask_ = capacity - 1;
    }

    std::size_t
    capacity() const
    {
        return slots_.size();
    }

    /**
     * Publish a ticket; blocks (spin, then yield) while the ring is
     * full. Returns false without publishing when the consumer
     * cancelled the pipeline mid-run.
     */
    bool
    push(const EpochTicket &ticket)
    {
        const std::uint64_t tail =
            tail_.load(std::memory_order_relaxed);
        int spins = 0;
        while (tail - head_.load(std::memory_order_acquire) >=
               slots_.size()) {
            if (cancelled_.load(std::memory_order_acquire))
                return false;
            if (++spins > 128)
                std::this_thread::yield();
        }
        if (cancelled_.load(std::memory_order_acquire))
            return false;
        slots_[tail & mask_] = ticket;
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /**
     * Take the next ticket; blocks while the ring is empty and the
     * producer has not closed it. Returns false once closed (or
     * cancelled) and drained.
     */
    bool
    pop(EpochTicket &ticket)
    {
        const std::uint64_t head =
            head_.load(std::memory_order_relaxed);
        while (true) {
            if (head < tail_.load(std::memory_order_acquire)) {
                ticket = slots_[head & mask_];
                head_.store(head + 1, std::memory_order_release);
                return true;
            }
            if (cancelled_.load(std::memory_order_acquire))
                return false;
            if (closed_.load(std::memory_order_acquire) &&
                head == tail_.load(std::memory_order_acquire))
                return false;
            std::this_thread::yield();
        }
    }

    /** Producer side: no more tickets will be pushed. */
    void
    close()
    {
        closed_.store(true, std::memory_order_release);
    }

    /**
     * Consumer side: abandon the pipeline (e.g. analysis threw).
     * Unblocks a producer stuck in push() so it can unwind.
     */
    void
    cancel()
    {
        cancelled_.store(true, std::memory_order_release);
    }

  private:
    std::vector<EpochTicket> slots_;
    std::size_t mask_ = 0;
    alignas(64) std::atomic<std::uint64_t> head_{0}; ///< Consumer.
    alignas(64) std::atomic<std::uint64_t> tail_{0}; ///< Producer.
    std::atomic<bool> closed_{false};
    std::atomic<bool> cancelled_{false};
};

} // namespace perple::stream

#endif // PERPLE_CORE_EPOCH_RING_H
