#include "perple/kernels.h"

#include <algorithm>
#include <array>
#include <utility>

#include "common/error.h"
#include "common/strings.h"

namespace perple::core
{

const char *
kernelModeName(KernelMode mode)
{
    switch (mode) {
      case KernelMode::Auto:
        return "auto";
      case KernelMode::Specialized:
        return "specialized";
      case KernelMode::Interpreter:
        return "interpreter";
    }
    return "?";
}

KernelMode
kernelModeFromName(const std::string &name)
{
    if (name == "auto")
        return KernelMode::Auto;
    if (name == "specialized")
        return KernelMode::Specialized;
    if (name == "interpreter")
        return KernelMode::Interpreter;
    fatal(format("unknown kernel mode '%s' (want auto, specialized or "
                 "interpreter)",
                 name.c_str()));
}

std::size_t
KernelReport::specializedCount() const
{
    std::size_t n = 0;
    for (const OutcomeEntry &entry : outcomes)
        if (entry.specialized)
            ++n;
    return n;
}

std::string
KernelReport::summary() const
{
    if (!batched)
        return format("interpreter (mode=%s)", kernelModeName(mode));
    return format("specialized %zu/%zu outcomes (batch=%zu, mode=%s)",
                  specializedCount(), outcomes.size(), batchWidth,
                  kernelModeName(mode));
}

namespace detail
{

bool
KernelShape::specializable() const
{
    return numAtoms <= kMaxKernelAtoms &&
           numExistential <= kMaxKernelExistential;
}

std::string
KernelShape::describe() const
{
    return format("atoms=%d exist=%d %s%s", numAtoms, numExistential,
                  allFrameIndexed ? "frame-indexed" : "mixed-index",
                  anyResidue ? " residue" : "");
}

KernelShape
shapeOf(const CompiledOutcome &outcome)
{
    KernelShape shape;
    shape.numAtoms = static_cast<int>(outcome.atoms.size());
    shape.numExistential = static_cast<int>(outcome.numExistential);
    for (const CompiledAtom &atom : outcome.atoms) {
        if (atom.existSlot >= 0)
            shape.allFrameIndexed = false;
        if (atom.checkResidue)
            shape.anyResidue = true;
    }
    return shape;
}

namespace
{

/**
 * The shape-specialized block kernel. The atom loop's trip count and
 * the frame-vs-existential / residue decisions are template constants,
 * so the whole loop unrolls with the per-atom branches resolved at
 * compile time; the per-lane loops are branch-free over contiguous SoA
 * rows and autovectorize. stride == 1 (the common arithmetic-sequence
 * case) is hoisted per atom to skip the div/mod decode.
 *
 * Semantics are exactly evalCompiledAtoms per lane: every check is an
 * AND into the lane's match bit (lanes entering 0 stay 0 and are never
 * counted), and when every lane has failed the remaining atoms are
 * skipped (the interpreter's early exit, block level).
 */
template <int NumAtoms, int NumExist, bool AllFrame, bool AnyResidue>
void
atomBlockKernel(const CompiledAtom *atoms,
                const std::int64_t *const *lanes, std::size_t width,
                std::int64_t iterations,
                const litmus::Value *const *bufs, std::uint8_t *match)
{
    std::uint8_t incoming = 0;
    for (std::size_t w = 0; w < width; ++w)
        incoming = static_cast<std::uint8_t>(incoming | match[w]);
    if (incoming == 0)
        return;

    constexpr std::size_t kExistSlots =
        NumExist > 0 ? static_cast<std::size_t>(NumExist) : 1;
    [[maybe_unused]] std::int64_t lo[kExistSlots][kMaxKernelBatchWidth];
    [[maybe_unused]] std::int64_t hi[kExistSlots][kMaxKernelBatchWidth];
    if constexpr (NumExist > 0) {
        for (int e = 0; e < NumExist; ++e) {
            for (std::size_t w = 0; w < width; ++w) {
                lo[e][w] = 0;
                hi[e][w] = iterations - 1;
            }
        }
    }

    for (int a = 0; a < NumAtoms; ++a) {
        const CompiledAtom &atom = atoms[a];
        const std::int64_t *idx =
            lanes[static_cast<std::size_t>(atom.bufThread)];
        const litmus::Value *buf =
            bufs[static_cast<std::size_t>(atom.bufThread)];
        const std::int64_t lpi = atom.loadsPerIteration;
        const std::int64_t slot = atom.slot;
        const std::int64_t stride = atom.stride;
        const std::int64_t offset = atom.offset;

        bool is_frame = AllFrame;
        if constexpr (!AllFrame)
            is_frame = atom.frameThread >= 0;

        if (atom.readsAtOrAfter) {
            if constexpr (AnyResidue) {
                if (atom.checkResidue) {
                    if (stride == 1) {
                        // The congruence is vacuous at stride 1; only
                        // the floor can fail.
                        for (std::size_t w = 0; w < width; ++w) {
                            const litmus::Value val =
                                buf[lpi * idx[w] + slot];
                            match[w] = static_cast<std::uint8_t>(
                                match[w] & static_cast<std::uint8_t>(
                                               val >= offset));
                        }
                    } else {
                        for (std::size_t w = 0; w < width; ++w) {
                            const litmus::Value val =
                                buf[lpi * idx[w] + slot];
                            const bool pass =
                                val >= offset &&
                                (val - offset) % stride == 0;
                            match[w] = static_cast<std::uint8_t>(
                                match[w] &
                                static_cast<std::uint8_t>(pass));
                        }
                    }
                }
            }
            if (is_frame) {
                const std::int64_t *fidx =
                    lanes[static_cast<std::size_t>(atom.frameThread)];
                for (std::size_t w = 0; w < width; ++w) {
                    const litmus::Value val = buf[lpi * idx[w] + slot];
                    match[w] = static_cast<std::uint8_t>(
                        match[w] &
                        static_cast<std::uint8_t>(
                            val >= stride * fidx[w] + offset));
                }
            } else if constexpr (NumExist > 0) {
                const auto e = static_cast<std::size_t>(atom.existSlot);
                if (stride == 1) {
                    for (std::size_t w = 0; w < width; ++w) {
                        const std::int64_t bound =
                            buf[lpi * idx[w] + slot] - offset;
                        hi[e][w] = std::min(hi[e][w], bound);
                    }
                } else {
                    for (std::size_t w = 0; w < width; ++w) {
                        const std::int64_t bound = floorDiv(
                            buf[lpi * idx[w] + slot] - offset, stride);
                        hi[e][w] = std::min(hi[e][w], bound);
                    }
                }
            }
        } else { // ReadsBefore: val <= stride * idx + offset - 1.
            if (is_frame) {
                const std::int64_t *fidx =
                    lanes[static_cast<std::size_t>(atom.frameThread)];
                for (std::size_t w = 0; w < width; ++w) {
                    const litmus::Value val = buf[lpi * idx[w] + slot];
                    match[w] = static_cast<std::uint8_t>(
                        match[w] &
                        static_cast<std::uint8_t>(
                            val <= stride * fidx[w] + offset - 1));
                }
            } else if constexpr (NumExist > 0) {
                const auto e = static_cast<std::size_t>(atom.existSlot);
                if (stride == 1) {
                    for (std::size_t w = 0; w < width; ++w) {
                        const std::int64_t bound =
                            buf[lpi * idx[w] + slot] - offset + 1;
                        lo[e][w] = std::max(lo[e][w], bound);
                    }
                } else {
                    for (std::size_t w = 0; w < width; ++w) {
                        const std::int64_t bound = ceilDiv(
                            buf[lpi * idx[w] + slot] - offset + 1,
                            stride);
                        lo[e][w] = std::max(lo[e][w], bound);
                    }
                }
            }
        }

        std::uint8_t any = 0;
        for (std::size_t w = 0; w < width; ++w)
            any = static_cast<std::uint8_t>(any | match[w]);
        if (any == 0)
            return;
    }

    if constexpr (NumExist > 0) {
        for (int e = 0; e < NumExist; ++e) {
            for (std::size_t w = 0; w < width; ++w) {
                match[w] = static_cast<std::uint8_t>(
                    match[w] &
                    static_cast<std::uint8_t>(lo[e][w] <= hi[e][w]));
            }
        }
    }
}

/** An outcome whose compiled atom list is empty always holds: the AND
 *  contract makes this a no-op (incoming match stands). */
void
trivialAtomBlockKernel(const CompiledAtom *,
                       const std::int64_t *const *, std::size_t,
                       std::int64_t, const litmus::Value *const *,
                       std::uint8_t *)
{}

/**
 * The dispatch table: one instantiation per point of the shape
 * grammar, indexed by
 * (numAtoms - 1) * 12 + numExistential * 4 + allFrame * 2 + residue.
 */
constexpr std::size_t kShapeCombos =
    static_cast<std::size_t>(kMaxKernelAtoms) *
    static_cast<std::size_t>(kMaxKernelExistential + 1) * 2 * 2;

template <std::size_t... I>
constexpr std::array<AtomBlockFn, sizeof...(I)>
makeKernelTable(std::index_sequence<I...>)
{
    return {{&atomBlockKernel<static_cast<int>(I / 12) + 1,
                              static_cast<int>((I / 4) % 3),
                              ((I / 2) % 2) != 0, (I % 2) != 0>...}};
}

constexpr std::array<AtomBlockFn, kShapeCombos> kKernelTable =
    makeKernelTable(std::make_index_sequence<kShapeCombos>{});

} // namespace

AtomBlockFn
specializedKernelFor(const KernelShape &shape)
{
    if (!shape.specializable())
        return nullptr;
    if (shape.numAtoms == 0)
        return &trivialAtomBlockKernel;
    const std::size_t index =
        static_cast<std::size_t>(shape.numAtoms - 1) * 12 +
        static_cast<std::size_t>(shape.numExistential) * 4 +
        (shape.allFrameIndexed ? 2u : 0u) + (shape.anyResidue ? 1u : 0u);
    return kKernelTable[index];
}

void
BlockScratch::resize(std::size_t num_threads, std::size_t w)
{
    checkInternal(w >= 1 && w <= kMaxKernelBatchWidth,
                  "kernel batch width out of range");
    if (numThreads == num_threads && width == w)
        return;
    numThreads = num_threads;
    width = w;
    frames.assign(num_threads * w, 0);
    over.assign(num_threads * w, 0);
    ok.assign(w, 1);
    vals.assign(w, 0);
    idx.assign(w, 0);
    gather.assign(num_threads, 0);
    lanePtrs.clear();
    lanePtrs.reserve(num_threads);
    for (std::size_t t = 0; t < num_threads; ++t)
        lanePtrs.push_back(frames.data() + t * w);
}

AtomKernel::AtomKernel(const CompiledOutcome &compiled)
    : shape_(shapeOf(compiled)), fn_(specializedKernelFor(shape_))
{}

void
AtomKernel::evalBlock(const CompiledOutcome &compiled,
                      BlockScratch &scratch, std::size_t width,
                      std::int64_t iterations,
                      const litmus::Value *const *bufs,
                      std::uint8_t *match) const
{
    checkInternal(width >= 1 && width <= scratch.width,
                  "kernel block wider than the scratch");
    const std::int64_t *const *lanes = scratch.lanePtrs.data();
    if (fn_ != nullptr) {
        fn_(compiled.atoms.data(), lanes, width, iterations, bufs,
            match);
        return;
    }
    // Shape outside the instantiated set: the existing interpreter,
    // per lane, over a gathered per-thread index row. Lanes entering 0
    // are skipped (the AND contract).
    std::int64_t *gather = scratch.gather.data();
    for (std::size_t w = 0; w < width; ++w) {
        if (match[w] == 0)
            continue;
        for (std::size_t t = 0; t < scratch.numThreads; ++t)
            gather[t] = lanes[t][w];
        match[w] = static_cast<std::uint8_t>(
            evalCompiledAtoms(compiled, gather, iterations, bufs));
    }
}

PivotKernel::PivotKernel(const CompiledOutcome &compiled,
                         std::vector<DecodeStep> steps,
                         std::int32_t pivot,
                         std::vector<std::int32_t> frame_threads)
    : atoms_(compiled), steps_(std::move(steps)), pivot_(pivot),
      frameThreads_(std::move(frame_threads))
{}

namespace
{

/**
 * Invoke @p fused with @p step's value->iteration decode as a
 * branch-hoisted lambda: the rf-vs-fr / stride-1 / power-of-two
 * decisions are made once per step, not once per lane.
 */
template <typename Fn>
std::uint8_t
withDecode(const DecodeStep &step, Fn &&fused)
{
    const std::int64_t stride = step.stride;
    const std::int64_t offset = step.offset;
    if (step.rfDecode) {
        if (stride == 1) {
            // d < 0 lands below the range check anyway.
            return fused([offset](litmus::Value val) {
                return val - offset;
            });
        }
        if (step.strideShift >= 0) {
            const std::int64_t mask = stride - 1;
            const auto shift = static_cast<unsigned>(step.strideShift);
            return fused([offset, mask, shift](litmus::Value val) {
                const std::int64_t d = val - offset;
                return (d < 0 || (d & mask) != 0) ? std::int64_t{-1}
                                                  : d >> shift;
            });
        }
        return fused([offset, stride](litmus::Value val) {
            const std::int64_t d = val - offset;
            return (d < 0 || d % stride != 0) ? std::int64_t{-1}
                                              : d / stride;
        });
    }
    // Reading the initial value: 0 means the writer precedes the
    // target thread's very first store; otherwise the first matching
    // fr candidate wins, like the scalar offset scan.
    const auto &fr = step.frOffsets;
    if (stride == 1) {
        return fused([&fr](litmus::Value val) {
            if (val == 0)
                return std::int64_t{0};
            for (const std::int64_t a : fr)
                if (val - a >= 0)
                    return val - a + 1;
            return std::int64_t{-1};
        });
    }
    return fused([&fr, stride](litmus::Value val) {
        if (val == 0)
            return std::int64_t{0};
        for (const std::int64_t a : fr) {
            const std::int64_t d = val - a;
            if (d >= 0 && d % stride == 0)
                return d / stride + 1;
        }
        return std::int64_t{-1};
    });
}

} // namespace

void
PivotKernel::evalPivotBlock(const CompiledOutcome &compiled,
                            BlockScratch &scratch, std::int64_t n0,
                            std::size_t width, std::int64_t iterations,
                            std::int64_t available,
                            const litmus::Value *const *bufs,
                            std::uint8_t *match, std::uint8_t *need,
                            const std::uint8_t *active) const
{
    checkInternal(width >= 1 && width <= scratch.width &&
                      n0 >= 0 &&
                      n0 + static_cast<std::int64_t>(width) <=
                          available &&
                      available <= iterations,
                  "pivot block outside the watermarked range");

    if (available >= iterations) {
        // Offline counting (the watermark covers everything): no lane
        // can ever defer — every decoded index at/past `available` is
        // already out of [0, iterations) — so the entire NeedData
        // machinery (source deferral, `over` rows, the final frame
        // scan) is provably inert. Skip it all, and let `match`
        // itself carry the alive mask end-to-end (the AND contract,
        // with no final copy pass). This is the hot path of count().
        std::uint8_t any = 0;
        for (std::size_t w = 0; w < width; ++w) {
            match[w] = active != nullptr
                           ? static_cast<std::uint8_t>(active[w] != 0)
                           : std::uint8_t{1};
            need[w] = 0;
            any = static_cast<std::uint8_t>(any | match[w]);
        }
        if (any == 0)
            return;
        std::int64_t *pivot_row =
            scratch.frameRow(static_cast<std::size_t>(pivot_));
        for (std::size_t w = 0; w < width; ++w)
            pivot_row[w] = n0 + static_cast<std::int64_t>(w);
        for (const DecodeStep &step : steps_) {
            std::int64_t *dst = scratch.frameRow(
                static_cast<std::size_t>(step.targetThread));
            if (step.fallback) {
                for (std::size_t w = 0; w < width; ++w)
                    dst[w] = n0 + static_cast<std::int64_t>(w);
                continue;
            }
            const std::int64_t *src = scratch.frameRow(
                static_cast<std::size_t>(step.sourceThread));
            const litmus::Value *buf =
                bufs[static_cast<std::size_t>(step.bufThread)];
            const std::int64_t lpi = step.loadsPerIteration;
            const std::int64_t slot = step.slot;
            const std::uint8_t alive_after =
                withDecode(step, [&](auto &&decode) {
                    std::uint8_t alive_acc = 0;
                    for (std::size_t w = 0; w < width; ++w) {
                        const std::int64_t i =
                            decode(buf[lpi * src[w] + slot]);
                        const bool good =
                            match[w] != 0 && i >= 0 && i < iterations;
                        match[w] = static_cast<std::uint8_t>(good);
                        dst[w] = good ? i : 0;
                        alive_acc = static_cast<std::uint8_t>(
                            alive_acc | match[w]);
                    }
                    return alive_acc;
                });
            if (alive_after == 0)
                return;
        }
        atoms_.evalBlock(compiled, scratch, width, iterations, bufs,
                         match);
        return;
    }

    // Lane state: ok = no NoMatch yet, need = NeedData decided. The
    // two are mutually exclusive by construction (transitions happen
    // only while ok && !need), mirroring the scalar evaluator's
    // early returns. Inactive lanes start dead and skip everything.
    std::uint8_t *ok = scratch.ok.data();
    std::uint8_t any = 0;
    for (std::size_t w = 0; w < width; ++w) {
        ok[w] = active != nullptr
                    ? static_cast<std::uint8_t>(active[w] != 0)
                    : std::uint8_t{1};
        need[w] = 0;
        any = static_cast<std::uint8_t>(any | ok[w]);
    }
    if (any == 0) {
        std::fill_n(match, width, static_cast<std::uint8_t>(0));
        return;
    }

    // Pivot lanes are iota indices below the watermark by the range
    // precondition. Only the pivot's `over` row needs clearing: every
    // other row this call reads — step sources beyond the pivot, the
    // final frame scan — is a step target, and every step (fallback
    // included) fully rewrites its target's rows before anything
    // reads them, in plan order.
    std::int64_t *pivot_row =
        scratch.frameRow(static_cast<std::size_t>(pivot_));
    std::uint8_t *pivot_over =
        scratch.overRow(static_cast<std::size_t>(pivot_));
    for (std::size_t w = 0; w < width; ++w) {
        pivot_row[w] = n0 + static_cast<std::int64_t>(w);
        pivot_over[w] = 0;
    }

    for (const DecodeStep &step : steps_) {
        std::int64_t *dst = scratch.frameRow(
            static_cast<std::size_t>(step.targetThread));
        std::uint8_t *dover = scratch.overRow(
            static_cast<std::size_t>(step.targetThread));
        if (step.fallback) {
            // The pivot index itself — always below the watermark.
            for (std::size_t w = 0; w < width; ++w) {
                dst[w] = n0 + static_cast<std::int64_t>(w);
                dover[w] = 0;
            }
            continue;
        }
        const std::int64_t *src = scratch.frameRow(
            static_cast<std::size_t>(step.sourceThread));
        const std::uint8_t *sover = scratch.overRow(
            static_cast<std::size_t>(step.sourceThread));
        const litmus::Value *buf =
            bufs[static_cast<std::size_t>(step.bufThread)];
        const std::int64_t lpi = step.loadsPerIteration;
        const std::int64_t slot = step.slot;

        // One fused pass per lane, with the value->index decode
        // hoisted per step. Per lane, in scalar order: (a) a source
        // index at/past the watermark defers the lane *before* the
        // read; (b) the read itself is safe for every lane — rows
        // hold clamped in-range indices even where dead or deferred;
        // (c) decode failure (-1) and range check are NoMatch
        // *before* any watermark deferral of the decoded index; (d)
        // the decoded index is stored clamped to 0 with the watermark
        // crossing remembered in the `over` row.
        const auto fused = [&](auto &&decode) {
            std::uint8_t alive_acc = 0;
            for (std::size_t w = 0; w < width; ++w) {
                const bool pre = ok[w] != 0 && need[w] == 0;
                const bool defers = pre && sover[w] != 0;
                const bool alive = pre && !defers;
                need[w] = static_cast<std::uint8_t>(
                    need[w] | static_cast<std::uint8_t>(defers));
                const std::int64_t i = decode(buf[lpi * src[w] + slot]);
                const bool fail = i < 0 || i >= iterations;
                ok[w] = static_cast<std::uint8_t>(
                    ok[w] &
                    static_cast<std::uint8_t>(!(alive && fail)));
                const bool good = alive && !fail;
                const bool past = good && i >= available;
                dover[w] = static_cast<std::uint8_t>(past);
                dst[w] = good && !past ? i : 0;
                alive_acc = static_cast<std::uint8_t>(
                    alive_acc | static_cast<std::uint8_t>(
                                    ok[w] != 0 && need[w] == 0));
            }
            return alive_acc;
        };

        const std::uint8_t alive_after = withDecode(step, fused);

        // Every lane dead or deferred: the remaining steps and the
        // atom scan cannot change any verdict (the scalar early
        // return, block level). `need` is final — later steps only
        // ever defer lanes that are still alive.
        if (alive_after == 0) {
            std::fill_n(match, width, static_cast<std::uint8_t>(0));
            return;
        }
    }

    // The atom scan reads each atom's buf at the frame index of the
    // value's own thread, so any resolved frame index past the
    // watermark defers the lane (the scalar path's final scan).
    for (const std::int32_t t : frameThreads_) {
        const std::uint8_t *tover =
            scratch.overRow(static_cast<std::size_t>(t));
        for (std::size_t w = 0; w < width; ++w)
            if (ok[w] != 0 && need[w] == 0 && tover[w] != 0)
                need[w] = 1;
    }

    // Seed the atom kernel with the alive mask (AND contract): dead
    // and deferred lanes skip the atom scan entirely, and an all-dead
    // block skips the call.
    std::uint8_t alive_any = 0;
    for (std::size_t w = 0; w < width; ++w) {
        match[w] = static_cast<std::uint8_t>(
            ok[w] & static_cast<std::uint8_t>(need[w] == 0));
        alive_any = static_cast<std::uint8_t>(alive_any | match[w]);
    }
    if (alive_any == 0)
        return;
    atoms_.evalBlock(compiled, scratch, width, iterations, bufs, match);
}

} // namespace detail

} // namespace perple::core
