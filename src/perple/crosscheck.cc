#include "perple/crosscheck.h"

#include "common/error.h"
#include "perple/converter.h"
#include "perple/perpetual_outcome.h"
#include "sim/machine.h"

namespace perple::core
{

CrossCheckReport
crossCheckCounters(const litmus::Test &test,
                   const std::vector<litmus::Outcome> &outcomes,
                   const CrossCheckConfig &config)
{
    checkUser(config.iterations > 0,
              "counter cross-check needs a positive iteration count");

    const PerpetualTest perpetual = convert(test);

    sim::MachineConfig machine_config = config.machine;
    machine_config.seed = config.seed;
    machine_config.addressMode = sim::AddressMode::Shared;
    sim::Machine machine(perpetual.programs, test.numLocations(),
                         machine_config);
    sim::RunResult run;
    machine.runFree(config.iterations, 0, run);

    const auto perpetual_outcomes =
        buildPerpetualOutcomes(test, outcomes);
    ExhaustiveCounter exhaustive(test, perpetual_outcomes);
    HeuristicCounter heuristic(test, perpetual_outcomes);
    exhaustive.setKernelMode(config.kernelMode);
    heuristic.setKernelMode(config.kernelMode);
    const RawBufs raw(run.bufs);

    CrossCheckReport report;
    report.iterations = config.iterations;
    report.exhaustiveSerial = exhaustive.count(
        config.iterations, raw, config.mode, /*threads=*/1);
    report.heuristicSerial = heuristic.count(
        config.iterations, raw, config.mode, /*threads=*/1);
    if (config.parallel) {
        report.exhaustiveParallel =
            exhaustive.count(config.iterations, raw, config.mode,
                             config.parallelThreads);
        report.heuristicParallel =
            heuristic.count(config.iterations, raw, config.mode,
                            config.parallelThreads);
    }
    if (config.kernelPit) {
        // Same bufs, serial both times: any divergence is the kernel
        // layer's fault, not scheduling or sharding.
        exhaustive.setKernelMode(KernelMode::Interpreter);
        heuristic.setKernelMode(KernelMode::Interpreter);
        report.exhaustiveInterpreter = exhaustive.count(
            config.iterations, raw, config.mode, /*threads=*/1);
        report.heuristicInterpreter = heuristic.count(
            config.iterations, raw, config.mode, /*threads=*/1);
        exhaustive.setKernelMode(KernelMode::Specialized);
        heuristic.setKernelMode(KernelMode::Specialized);
        report.exhaustiveSpecialized = exhaustive.count(
            config.iterations, raw, config.mode, /*threads=*/1);
        report.heuristicSpecialized = heuristic.count(
            config.iterations, raw, config.mode, /*threads=*/1);
    }
    return report;
}

} // namespace perple::core
