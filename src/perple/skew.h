/**
 * @file
 * Thread-skew measurement (Sections VI-B.5, VII-E / Figure 12).
 *
 * Because perpetual stores are arithmetic-sequence elements, a value
 * loaded by thread t in iteration n uniquely identifies the iteration m
 * of the storing thread s that produced it; n - m is the skew between t
 * and s around that moment. This module decodes every cross-thread load
 * of a finished perpetual run into a skew sample.
 */

#ifndef PERPLE_CORE_SKEW_H
#define PERPLE_CORE_SKEW_H

#include "perple/converter.h"
#include "sim/result.h"
#include "stats/histogram.h"

namespace perple::core
{

/**
 * Decode the thread-skew distribution of a perpetual run.
 *
 * Only loads whose value was stored by a *different* thread contribute
 * (same-thread forwarding carries no skew information); loads that
 * returned an initial 0 are skipped (the storing iteration is
 * undefined).
 *
 * @param perpetual The converted test that produced @p run.
 * @param run The finished run (bufs in paper layout).
 * @param iterations N.
 * @return Histogram of (reader iteration - writer iteration).
 */
stats::Histogram measureSkew(const PerpetualTest &perpetual,
                             const sim::RunResult &run,
                             std::int64_t iterations);

} // namespace perple::core

#endif // PERPLE_CORE_SKEW_H
