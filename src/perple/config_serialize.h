/**
 * @file
 * Canonical serialization of a HarnessConfig.
 *
 * Several layers need to agree on "the same configuration": the serve
 * daemon's content-addressed result cache keys completed jobs by
 * (canonical test, iterations, config), manifests and job logs record
 * the config a result was produced under, and tests compare configs
 * across processes. Ad-hoc stringification in each of those places
 * drifts; this is the one encoding they all share.
 *
 * Properties:
 *
 *  - Stable field order: fields are emitted in a fixed sequence, so
 *    two equal configs serialize byte-identically on every host.
 *  - Defaults elided: a field equal to its default-constructed value
 *    is omitted. Because every line is keyed ("key value\n"), elision
 *    stays injective — an absent key *means* the default — while the
 *    encoding of a default config collapses to just the version line.
 *  - Semantic fields only: knobs that are proven not to change counts
 *    (analysisThreads, kernelMode, the streaming pipeline shape, the
 *    capture path/encoding) are excluded by design. The sharded
 *    counters, the specialized kernels and the epoch pipeline are all
 *    bit-identical to the serial reference for any setting (see
 *    DESIGN.md §5b/§9/§10), so two submissions differing only in those
 *    knobs are the *same* job and must share a cache entry.
 *  - machine.seed and machine.addressMode are excluded too: the
 *    harness overrides them from config.seed and the perpetual layout,
 *    so they carry no independent information.
 */

#ifndef PERPLE_CORE_CONFIG_SERIALIZE_H
#define PERPLE_CORE_CONFIG_SERIALIZE_H

#include <string>

#include "perple/harness.h"

namespace perple::core
{

/**
 * Render the result-affecting fields of @p config in the canonical
 * "perple-config v1" key-value form described in the file comment.
 */
std::string serializeConfig(const HarnessConfig &config);

/**
 * Parse a serializeConfig() payload back into a HarnessConfig whose
 * semantic fields match the serialized ones (excluded fields keep
 * their defaults). serializeConfig(parseConfig(s)) == s for any
 * canonical @p s.
 *
 * @throws UserError on malformed input or an unknown key.
 */
HarnessConfig parseConfig(const std::string &payload);

/** Stable lower-case backend name ("sim" / "native"). */
const char *backendName(Backend backend);

/** Parse a backendName(); throws UserError on anything else. */
Backend backendFromName(const std::string &name);

} // namespace perple::core

#endif // PERPLE_CORE_CONFIG_SERIALIZE_H
