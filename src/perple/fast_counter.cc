#include "perple/fast_counter.h"

#include <algorithm>

#include "common/error.h"
#include "common/thread_pool.h"
#include "perple/compiled_atoms.h"

namespace perple::core
{

using detail::ceilDiv;
using detail::floorDiv;
using litmus::ThreadId;
using litmus::Value;

namespace
{

/** Fenwick tree over [0, n) supporting point add / prefix sum. */
class Fenwick
{
  public:
    explicit Fenwick(std::size_t n) : tree_(n + 1, 0) {}

    void
    add(std::size_t index, std::int64_t delta)
    {
        for (std::size_t i = index + 1; i < tree_.size(); i += i & -i)
            tree_[i] += delta;
    }

    /** Sum over [0, index]. */
    std::int64_t
    prefix(std::int64_t index) const
    {
        if (index < 0)
            return 0;
        std::int64_t sum = 0;
        for (std::size_t i = std::min<std::size_t>(
                 static_cast<std::size_t>(index) + 1,
                 tree_.size() - 1);
             i > 0; i -= i & -i)
            sum += tree_[i];
        return sum;
    }

  private:
    std::vector<std::int64_t> tree_;
};

} // namespace

bool
FastExhaustiveCounter::isApplicable(const litmus::Test &test,
                                    const PerpetualOutcome &outcome)
{
    return test.numLoadThreads() == 2 &&
           outcome.existentialThreads.empty();
}

FastExhaustiveCounter::FastExhaustiveCounter(const litmus::Test &test,
                                             PerpetualOutcome outcome)
    : outcome_(std::move(outcome))
{
    checkUser(isApplicable(test, outcome_),
              "FastExhaustiveCounter needs exactly two frame threads "
              "and no store-only index variables");
    threadA_ = outcome_.frameThreads[0];
    threadB_ = outcome_.frameThreads[1];

    // Split the atoms by the thread owning the loaded value once, so
    // the per-index scans touch only their own flattened records.
    for (const Atom &atom : outcome_.atoms) {
        const ThreadId self = atom.value.thread;
        checkInternal(self == threadA_ || self == threadB_,
                      "fast-counter atom loads on a non-frame thread");
        SideAtom flat;
        flat.loadsPerIteration =
            static_cast<std::int32_t>(atom.value.loadsPerIteration);
        flat.slot = static_cast<std::int32_t>(atom.value.slot);
        flat.readsAtOrAfter = atom.kind == Atom::Kind::ReadsAtOrAfter;
        flat.checkResidue = flat.readsAtOrAfter && atom.checkResidue;
        flat.indexSelf = atom.indexThread == self;
        flat.stride = atom.stride;
        flat.offset = atom.offset;
        (self == threadA_ ? atomsA_ : atomsB_).push_back(flat);
    }
}

FastExhaustiveCounter::SideConstraint
FastExhaustiveCounter::constrain(const std::vector<SideAtom> &atoms,
                                 const Value *buf, std::int64_t n,
                                 std::int64_t iterations) const
{
    SideConstraint c;
    c.lo = 0;
    c.hi = iterations - 1;
    for (const SideAtom &atom : atoms) {
        const Value val =
            buf[atom.loadsPerIteration * n + atom.slot];
        if (atom.readsAtOrAfter) {
            if (atom.checkResidue &&
                (val < atom.offset ||
                 (val - atom.offset) % atom.stride != 0)) {
                c.valid = false;
                return c;
            }
            if (atom.indexSelf) {
                if (val < atom.stride * n + atom.offset) {
                    c.valid = false;
                    return c;
                }
            } else {
                c.hi = std::min(
                    c.hi, floorDiv(val - atom.offset, atom.stride));
            }
        } else {
            if (atom.indexSelf) {
                if (val > atom.stride * n + atom.offset - 1) {
                    c.valid = false;
                    return c;
                }
            } else {
                c.lo = std::max(
                    c.lo, ceilDiv(val - atom.offset + 1, atom.stride));
            }
        }
    }
    c.lo = std::max<std::int64_t>(c.lo, 0);
    c.hi = std::min(c.hi, iterations - 1);
    if (c.lo > c.hi)
        c.valid = false;
    return c;
}

void
FastExhaustiveCounter::constrainBlock(const std::vector<SideAtom> &atoms,
                                      const Value *buf, std::int64_t n0,
                                      std::size_t width,
                                      std::int64_t iterations,
                                      SideConstraint *out) const
{
    for (std::size_t w = 0; w < width; ++w) {
        out[w].valid = true;
        out[w].lo = 0;
        out[w].hi = iterations - 1;
    }
    for (const SideAtom &atom : atoms) {
        const std::int64_t lpi = atom.loadsPerIteration;
        const std::int64_t slot = atom.slot;
        const std::int64_t stride = atom.stride;
        const std::int64_t offset = atom.offset;
        if (atom.readsAtOrAfter) {
            if (atom.checkResidue) {
                if (stride == 1) {
                    for (std::size_t w = 0; w < width; ++w) {
                        const Value val = buf
                            [lpi * (n0 + static_cast<std::int64_t>(w)) +
                             slot];
                        out[w].valid = out[w].valid && val >= offset;
                    }
                } else {
                    for (std::size_t w = 0; w < width; ++w) {
                        const Value val = buf
                            [lpi * (n0 + static_cast<std::int64_t>(w)) +
                             slot];
                        out[w].valid = out[w].valid && val >= offset &&
                                       (val - offset) % stride == 0;
                    }
                }
            }
            if (atom.indexSelf) {
                for (std::size_t w = 0; w < width; ++w) {
                    const std::int64_t n =
                        n0 + static_cast<std::int64_t>(w);
                    const Value val = buf[lpi * n + slot];
                    out[w].valid =
                        out[w].valid && val >= stride * n + offset;
                }
            } else if (stride == 1) {
                for (std::size_t w = 0; w < width; ++w) {
                    const Value val = buf
                        [lpi * (n0 + static_cast<std::int64_t>(w)) +
                         slot];
                    out[w].hi = std::min(out[w].hi, val - offset);
                }
            } else {
                for (std::size_t w = 0; w < width; ++w) {
                    const Value val = buf
                        [lpi * (n0 + static_cast<std::int64_t>(w)) +
                         slot];
                    out[w].hi = std::min(
                        out[w].hi, floorDiv(val - offset, stride));
                }
            }
        } else {
            if (atom.indexSelf) {
                for (std::size_t w = 0; w < width; ++w) {
                    const std::int64_t n =
                        n0 + static_cast<std::int64_t>(w);
                    const Value val = buf[lpi * n + slot];
                    out[w].valid =
                        out[w].valid && val <= stride * n + offset - 1;
                }
            } else if (stride == 1) {
                for (std::size_t w = 0; w < width; ++w) {
                    const Value val = buf
                        [lpi * (n0 + static_cast<std::int64_t>(w)) +
                         slot];
                    out[w].lo = std::max(out[w].lo, val - offset + 1);
                }
            } else {
                for (std::size_t w = 0; w < width; ++w) {
                    const Value val = buf
                        [lpi * (n0 + static_cast<std::int64_t>(w)) +
                         slot];
                    out[w].lo = std::max(
                        out[w].lo, ceilDiv(val - offset + 1, stride));
                }
            }
        }
    }
    for (std::size_t w = 0; w < width; ++w) {
        out[w].lo = std::max<std::int64_t>(out[w].lo, 0);
        out[w].hi = std::min(out[w].hi, iterations - 1);
        if (out[w].lo > out[w].hi)
            out[w].valid = false;
    }
}

std::uint64_t
FastExhaustiveCounter::count(std::int64_t iterations,
                             const RawBufs &bufs,
                             std::size_t threads) const
{
    checkUser(iterations > 0, "need a positive iteration count");
    const auto n_sz = static_cast<std::size_t>(iterations);
    const std::size_t workers =
        common::ThreadPool::resolveThreads(threads);
    const Value *buf_a =
        bufs.data()[static_cast<std::size_t>(threadA_)];
    const Value *buf_b =
        bufs.data()[static_cast<std::size_t>(threadB_)];

    const bool blocked = kernelMode_ != KernelMode::Interpreter;
    const auto block_i =
        static_cast<std::int64_t>(detail::kKernelBatchWidth);

    // Phase 1: for each B index m, the swept-index interval J(m) =
    // [jlo, jhi] during which m is active (jlo > jhi: m invalid).
    // Entries are written disjointly, so the phase shards freely.
    std::vector<std::int64_t> jlo(n_sz, 1);
    std::vector<std::int64_t> jhi(n_sz, 0);
    const auto constrain_b = [&](std::int64_t begin,
                                 std::int64_t end) {
        if (blocked) {
            SideConstraint block[detail::kKernelBatchWidth];
            for (std::int64_t m0 = begin; m0 < end; m0 += block_i) {
                const auto width = static_cast<std::size_t>(
                    std::min(block_i, end - m0));
                constrainBlock(atomsB_, buf_b, m0, width, iterations,
                               block);
                for (std::size_t w = 0; w < width; ++w) {
                    if (!block[w].valid)
                        continue;
                    const auto m = static_cast<std::size_t>(
                        m0 + static_cast<std::int64_t>(w));
                    jlo[m] = block[w].lo;
                    jhi[m] = block[w].hi;
                }
            }
            return;
        }
        for (std::int64_t m = begin; m < end; ++m) {
            const SideConstraint j =
                constrain(atomsB_, buf_b, m, iterations);
            if (!j.valid)
                continue;
            jlo[static_cast<std::size_t>(m)] = j.lo;
            jhi[static_cast<std::size_t>(m)] = j.hi;
        }
    };

    // Phase 3 (per shard [begin, end) of the swept A range): seed a
    // private Fenwick tree with the B indices active at `begin`, then
    // replay activation/deactivation events position by position. The
    // tree contents at every position n equal the serial sweep's, so
    // the shard's partial sum contributes identical per-n terms.
    const auto sweep =
        [&](const std::vector<std::vector<std::int64_t>> &activate,
            const std::vector<std::vector<std::int64_t>> &deactivate,
            std::int64_t begin, std::int64_t end) -> std::uint64_t {
        Fenwick active(n_sz);
        for (std::int64_t m = 0; m < iterations; ++m) {
            const auto m_sz = static_cast<std::size_t>(m);
            if (jlo[m_sz] <= begin && begin <= jhi[m_sz])
                active.add(m_sz, 1);
        }
        std::uint64_t total = 0;
        // The A-side constraints are pure in n, so the blocked path
        // precomputes them per block while the Fenwick events still
        // replay strictly per position.
        SideConstraint block[detail::kKernelBatchWidth];
        for (std::int64_t n0 = begin; n0 < end; n0 += block_i) {
            const auto width = static_cast<std::size_t>(
                std::min(block_i, end - n0));
            if (blocked)
                constrainBlock(atomsA_, buf_a, n0, width, iterations,
                               block);
            for (std::size_t w = 0; w < width; ++w) {
                const std::int64_t n =
                    n0 + static_cast<std::int64_t>(w);
                if (n > begin) {
                    for (const std::int64_t m :
                         activate[static_cast<std::size_t>(n)])
                        active.add(static_cast<std::size_t>(m), 1);
                    for (const std::int64_t m :
                         deactivate[static_cast<std::size_t>(n)])
                        active.add(static_cast<std::size_t>(m), -1);
                }
                const SideConstraint i =
                    blocked ? block[w]
                            : constrain(atomsA_, buf_a, n, iterations);
                if (!i.valid)
                    continue;
                total += static_cast<std::uint64_t>(
                    active.prefix(i.hi) - active.prefix(i.lo - 1));
            }
        }
        return total;
    };

    if (workers <= 1) {
        constrain_b(0, iterations);
    } else {
        common::ThreadPool::shared(workers).parallelFor(
            0, iterations, /*grain=*/1024,
            [&](std::size_t, std::int64_t begin, std::int64_t end) {
                constrain_b(begin, end);
            });
    }

    // Phase 2: turn the intervals into per-position event lists the
    // sweep shards replay (serial, linear, cheap).
    std::vector<std::vector<std::int64_t>> activate(n_sz);
    std::vector<std::vector<std::int64_t>> deactivate(n_sz);
    for (std::int64_t m = 0; m < iterations; ++m) {
        const auto m_sz = static_cast<std::size_t>(m);
        if (jlo[m_sz] > jhi[m_sz])
            continue;
        activate[static_cast<std::size_t>(jlo[m_sz])].push_back(m);
        if (jhi[m_sz] + 1 < iterations)
            deactivate[static_cast<std::size_t>(jhi[m_sz] + 1)]
                .push_back(m);
    }

    if (workers <= 1) {
        // Serial reference path: one shard covering the whole sweep
        // (the seed loop then plays the role of activate[0]).
        return sweep(activate, deactivate, 0, iterations);
    }

    common::ThreadPool &pool = common::ThreadPool::shared(workers);
    std::vector<std::uint64_t> partial(pool.numThreads(), 0);
    pool.parallelFor(
        0, iterations, /*grain=*/1024,
        [&](std::size_t shard, std::int64_t begin, std::int64_t end) {
            partial[shard] = sweep(activate, deactivate, begin, end);
        });
    std::uint64_t total = 0;
    for (const std::uint64_t p : partial)
        total += p;
    return total;
}

std::uint64_t
FastExhaustiveCounter::count(
    std::int64_t iterations,
    const std::vector<std::vector<Value>> &bufs,
    std::size_t threads) const
{
    return count(iterations, RawBufs(bufs), threads);
}

} // namespace perple::core
