#include "perple/fast_counter.h"

#include <algorithm>

#include "common/error.h"

namespace perple::core
{

using litmus::ThreadId;
using litmus::Value;

namespace
{

std::int64_t
floorDiv(std::int64_t a, std::int64_t b)
{
    return a >= 0 ? a / b : -((-a + b - 1) / b);
}

std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return a > 0 ? (a + b - 1) / b : -((-a) / b);
}

/** Fenwick tree over [0, n) supporting point add / prefix sum. */
class Fenwick
{
  public:
    explicit Fenwick(std::size_t n) : tree_(n + 1, 0) {}

    void
    add(std::size_t index, std::int64_t delta)
    {
        for (std::size_t i = index + 1; i < tree_.size(); i += i & -i)
            tree_[i] += delta;
    }

    /** Sum over [0, index]. */
    std::int64_t
    prefix(std::int64_t index) const
    {
        if (index < 0)
            return 0;
        std::int64_t sum = 0;
        for (std::size_t i = std::min<std::size_t>(
                 static_cast<std::size_t>(index) + 1,
                 tree_.size() - 1);
             i > 0; i -= i & -i)
            sum += tree_[i];
        return sum;
    }

  private:
    std::vector<std::int64_t> tree_;
};

/** An index's constraint summary for one side of the frame. */
struct SideConstraint
{
    bool valid = true;         ///< Self atoms + residues hold.
    std::int64_t lo = 0;       ///< Partner-index lower bound.
    std::int64_t hi = 0;       ///< Partner-index upper bound.
};

/**
 * Evaluate all atoms whose loaded value lives on thread @p self for
 * index @p n: self-indexed atoms and residues become validity, atoms
 * indexing the partner thread tighten [lo, hi].
 */
SideConstraint
constrain(const PerpetualOutcome &outcome, ThreadId self,
          std::int64_t n, std::int64_t iterations,
          const std::vector<std::vector<Value>> &bufs)
{
    SideConstraint c;
    c.lo = 0;
    c.hi = iterations - 1;
    for (const Atom &atom : outcome.atoms) {
        if (atom.value.thread != self)
            continue;
        const Value val =
            bufs[static_cast<std::size_t>(self)][static_cast<
                std::size_t>(atom.value.loadsPerIteration * n +
                             atom.value.slot)];
        if (atom.kind == Atom::Kind::ReadsAtOrAfter) {
            if (atom.checkResidue &&
                (val < atom.offset ||
                 (val - atom.offset) % atom.stride != 0)) {
                c.valid = false;
                return c;
            }
            if (atom.indexThread == self) {
                if (val < atom.stride * n + atom.offset) {
                    c.valid = false;
                    return c;
                }
            } else {
                c.hi = std::min(
                    c.hi, floorDiv(val - atom.offset, atom.stride));
            }
        } else {
            if (atom.indexThread == self) {
                if (val > atom.stride * n + atom.offset - 1) {
                    c.valid = false;
                    return c;
                }
            } else {
                c.lo = std::max(
                    c.lo, ceilDiv(val - atom.offset + 1, atom.stride));
            }
        }
    }
    c.lo = std::max<std::int64_t>(c.lo, 0);
    c.hi = std::min(c.hi, iterations - 1);
    if (c.lo > c.hi)
        c.valid = false;
    return c;
}

} // namespace

bool
FastExhaustiveCounter::isApplicable(const litmus::Test &test,
                                    const PerpetualOutcome &outcome)
{
    return test.numLoadThreads() == 2 &&
           outcome.existentialThreads.empty();
}

FastExhaustiveCounter::FastExhaustiveCounter(const litmus::Test &test,
                                             PerpetualOutcome outcome)
    : outcome_(std::move(outcome))
{
    checkUser(isApplicable(test, outcome_),
              "FastExhaustiveCounter needs exactly two frame threads "
              "and no store-only index variables");
    threadA_ = outcome_.frameThreads[0];
    threadB_ = outcome_.frameThreads[1];
}

std::uint64_t
FastExhaustiveCounter::count(
    std::int64_t iterations,
    const std::vector<std::vector<Value>> &bufs) const
{
    checkUser(iterations > 0, "need a positive iteration count");
    const auto n_sz = static_cast<std::size_t>(iterations);

    // For each B index m: when (in terms of the swept A index) is it
    // active? J(m) = [lo, hi] from B's atoms.
    std::vector<std::vector<std::int64_t>> activate(n_sz);
    std::vector<std::vector<std::int64_t>> deactivate(n_sz);
    for (std::int64_t m = 0; m < iterations; ++m) {
        const SideConstraint j =
            constrain(outcome_, threadB_, m, iterations, bufs);
        if (!j.valid)
            continue;
        activate[static_cast<std::size_t>(j.lo)].push_back(m);
        if (j.hi + 1 < iterations)
            deactivate[static_cast<std::size_t>(j.hi + 1)].push_back(m);
    }

    Fenwick active(n_sz);
    std::uint64_t total = 0;
    for (std::int64_t n = 0; n < iterations; ++n) {
        for (const std::int64_t m : activate[static_cast<std::size_t>(n)])
            active.add(static_cast<std::size_t>(m), 1);
        for (const std::int64_t m :
             deactivate[static_cast<std::size_t>(n)])
            active.add(static_cast<std::size_t>(m), -1);

        const SideConstraint i =
            constrain(outcome_, threadA_, n, iterations, bufs);
        if (!i.valid)
            continue;
        total += static_cast<std::uint64_t>(active.prefix(i.hi) -
                                            active.prefix(i.lo - 1));
    }
    return total;
}

} // namespace perple::core
