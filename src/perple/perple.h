/**
 * @file
 * Umbrella header: the whole PerpLE public API.
 *
 * Typical use (see examples/quickstart.cpp):
 *
 * @code
 * const auto &entry = perple::litmus::findTest("sb");
 * auto perpetual = perple::core::convert(entry.test);
 * perple::core::HarnessConfig config;
 * auto result = perple::core::runPerpetual(
 *     perpetual, 10000, {entry.test.target}, config);
 * @endcode
 */

#ifndef PERPLE_CORE_PERPLE_H
#define PERPLE_CORE_PERPLE_H

#include "common/error.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "common/timing.h"
#include "generate/generator.h"
#include "litmus/builder.h"
#include "litmus/outcome.h"
#include "litmus/parser.h"
#include "litmus/registry.h"
#include "litmus/test.h"
#include "litmus/validator.h"
#include "litmus/writer.h"
#include "litmus7/runner.h"
#include "model/axiomatic.h"
#include "model/classify.h"
#include "model/hbgraph.h"
#include "model/operational.h"
#include "perple/codegen.h"
#include "perple/config_serialize.h"
#include "perple/converter.h"
#include "perple/counters.h"
#include "perple/crosscheck.h"
#include "perple/fast_counter.h"
#include "perple/harness.h"
#include "perple/perpetual_outcome.h"
#include "perple/skew.h"
#include "perple/stream.h"
#include "perple/stream_store.h"
#include "perple/witness.h"
#include "runtime/barrier.h"
#include "common/cli.h"
#include "runtime/native_runner.h"
#include "sim/machine.h"
#include "stats/histogram.h"
#include "stats/summary.h"
#include "serve/cache.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/journal.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "serve/scrub.h"
#include "stats/table.h"
#include "supervise/run.h"
#include "supervise/supervise.h"
#include "trace/codec.h"
#include "trace/corpus.h"
#include "trace/format.h"
#include "trace/reader.h"
#include "trace/writer.h"

#endif // PERPLE_CORE_PERPLE_H
