/**
 * @file
 * Compiled perpetual-outcome atoms: the counters' innermost loop.
 *
 * The symbolic Atom representation (perpetual_outcome.h) is convenient
 * to build and print but expensive to evaluate: every atom resolves
 * its existential-thread slot with a std::find, re-reads nested
 * std::vector metadata, and re-tests a consumed-condition mask that is
 * constant for a given counter. Both counters therefore *compile*
 * their outcomes at construction time into a flat array of POD
 * CompiledAtom records: the existential slot is a precomputed index,
 * the consumed-condition skip is folded out (consumed atoms are simply
 * not emitted), and the per-frame evaluation becomes a branch-light
 * scan over contiguous structs. Buf base pointers are bound once per
 * count() call through RawBufs (counters.h), not per frame.
 *
 * Evaluation is pure (no shared mutable state), which is what makes
 * the frame scan embarrassingly parallel — see ThreadPool and the
 * "Parallel outcome counting" section of DESIGN.md.
 */

#ifndef PERPLE_CORE_COMPILED_ATOMS_H
#define PERPLE_CORE_COMPILED_ATOMS_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/error.h"
#include "litmus/types.h"
#include "perple/perpetual_outcome.h"

namespace perple::core::detail
{

/** At most this many existential store-only threads per outcome. */
constexpr std::size_t kMaxExistential = 8;

/** Floor division for positive divisors. */
inline std::int64_t
floorDiv(std::int64_t a, std::int64_t b)
{
    // b > 0 always (sequence strides).
    return a >= 0 ? a / b : -((-a + b - 1) / b);
}

/** Ceiling division for positive divisors. */
inline std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return a > 0 ? (a + b - 1) / b : -((-a) / b);
}

/** One atom, flattened for the innermost counter loop. */
struct CompiledAtom
{
    /** Thread owning the loaded value (raw-buf / frame index). */
    std::int32_t bufThread = -1;

    /** Loads per iteration of bufThread (buf stride). */
    std::int32_t loadsPerIteration = 0;

    /** The load's slot within the iteration stripe (buf offset). */
    std::int32_t slot = 0;

    /** Frame thread of the index variable, or -1 when existential. */
    std::int32_t frameThread = -1;

    /** Existential lo/hi slot of the index variable, or -1. */
    std::int32_t existSlot = -1;

    /** True for rf (ReadsAtOrAfter), false for fr (ReadsBefore). */
    bool readsAtOrAfter = true;

    /** Congruence check (rf atoms only). */
    bool checkResidue = false;

    /** Sequence stride of the load's location. */
    std::int64_t stride = 1;

    /** Sequence offset (the original stored constant). */
    std::int64_t offset = 0;
};

/** A compiled outcome: the atoms a counter actually evaluates. */
struct CompiledOutcome
{
    std::vector<CompiledAtom> atoms;
    std::size_t numExistential = 0;
};

/**
 * Compile @p outcome, dropping the atoms flagged in @p skip_atoms
 * (aligned with outcome.atoms; empty = keep everything).
 *
 * The heuristic counter skips exactly the atoms its substitution
 * satisfies by construction — an atom whose index thread the decode
 * resolved. The *other* atoms of a consumed condition (an `=0`
 * condition has one fr atom per store to the location, possibly on
 * several threads) stay in the compiled set: dropping them would let
 * COUNTH accept frames COUNT rejects. The exhaustive counter passes
 * an empty vector.
 */
inline CompiledOutcome
compileOutcome(const PerpetualOutcome &outcome,
               const std::vector<bool> &skip_atoms = {})
{
    CompiledOutcome compiled;
    compiled.numExistential = outcome.existentialThreads.size();
    checkUser(compiled.numExistential <= kMaxExistential,
              "too many store-only threads in one outcome");
    checkInternal(skip_atoms.empty() ||
                      skip_atoms.size() == outcome.atoms.size(),
                  "atom skip vector does not match the outcome");
    // Resolve thread -> existential slot once up front instead of a
    // std::find over existentialThreads per atom (quadratic in the
    // existential count for exist-heavy outcomes).
    litmus::ThreadId max_thread = -1;
    for (const litmus::ThreadId t : outcome.existentialThreads)
        max_thread = std::max(max_thread, t);
    std::vector<std::int32_t> slot_of_thread(
        static_cast<std::size_t>(max_thread + 1), -1);
    for (std::size_t e = 0; e < outcome.existentialThreads.size(); ++e)
        slot_of_thread[static_cast<std::size_t>(
            outcome.existentialThreads[e])] =
            static_cast<std::int32_t>(e);
    compiled.atoms.reserve(outcome.atoms.size());
    for (std::size_t a = 0; a < outcome.atoms.size(); ++a) {
        const Atom &atom = outcome.atoms[a];
        if (!skip_atoms.empty() && skip_atoms[a])
            continue;
        CompiledAtom flat;
        flat.bufThread = atom.value.thread;
        flat.loadsPerIteration =
            static_cast<std::int32_t>(atom.value.loadsPerIteration);
        flat.slot = static_cast<std::int32_t>(atom.value.slot);
        flat.readsAtOrAfter = atom.kind == Atom::Kind::ReadsAtOrAfter;
        flat.checkResidue = flat.readsAtOrAfter && atom.checkResidue;
        flat.stride = atom.stride;
        flat.offset = atom.offset;
        if (atom.indexIsFrame) {
            flat.frameThread = atom.indexThread;
        } else {
            const auto t = atom.indexThread;
            const std::int32_t slot =
                t >= 0 && t <= max_thread
                    ? slot_of_thread[static_cast<std::size_t>(t)]
                    : -1;
            checkInternal(slot >= 0,
                          "existential atom index thread missing from "
                          "the outcome's existential-thread list");
            flat.existSlot = slot;
        }
        compiled.atoms.push_back(flat);
    }
    return compiled;
}

/** Compile several outcomes with nothing skipped. */
inline std::vector<CompiledOutcome>
compileOutcomes(const std::vector<PerpetualOutcome> &outcomes)
{
    std::vector<CompiledOutcome> compiled;
    compiled.reserve(outcomes.size());
    for (const PerpetualOutcome &outcome : outcomes)
        compiled.push_back(compileOutcome(outcome));
    return compiled;
}

/**
 * Evaluate a compiled outcome under the frame assignment
 * @p idx_by_thread (index -1 for threads without one).
 *
 * @param outcome The compiled outcome.
 * @param idx_by_thread Iteration index per thread id.
 * @param iterations N (bounds existential indices).
 * @param bufs Raw buf base pointers per thread (RawBufs::data()).
 */
inline bool
evalCompiledAtoms(const CompiledOutcome &outcome,
                  const std::int64_t *idx_by_thread,
                  std::int64_t iterations,
                  const litmus::Value *const *bufs)
{
    std::int64_t lo[kMaxExistential];
    std::int64_t hi[kMaxExistential];
    const std::size_t num_existential = outcome.numExistential;
    for (std::size_t e = 0; e < num_existential; ++e) {
        lo[e] = 0;
        hi[e] = iterations - 1;
    }

    for (const CompiledAtom &atom : outcome.atoms) {
        const auto value_thread =
            static_cast<std::size_t>(atom.bufThread);
        const std::int64_t n = idx_by_thread[value_thread];
        const litmus::Value val =
            bufs[value_thread][atom.loadsPerIteration * n + atom.slot];

        if (atom.readsAtOrAfter) {
            if (atom.checkResidue &&
                (val < atom.offset ||
                 (val - atom.offset) % atom.stride != 0))
                return false;
            if (atom.frameThread >= 0) {
                const std::int64_t idx = idx_by_thread[
                    static_cast<std::size_t>(atom.frameThread)];
                if (val < atom.stride * idx + atom.offset)
                    return false;
            } else {
                const auto e =
                    static_cast<std::size_t>(atom.existSlot);
                hi[e] = std::min(
                    hi[e], floorDiv(val - atom.offset, atom.stride));
            }
        } else { // ReadsBefore: val <= stride * idx + offset - 1.
            if (atom.frameThread >= 0) {
                const std::int64_t idx = idx_by_thread[
                    static_cast<std::size_t>(atom.frameThread)];
                if (val > atom.stride * idx + atom.offset - 1)
                    return false;
            } else {
                const auto e =
                    static_cast<std::size_t>(atom.existSlot);
                lo[e] = std::max(
                    lo[e], ceilDiv(val - atom.offset + 1, atom.stride));
            }
        }
    }

    for (std::size_t e = 0; e < num_existential; ++e)
        if (lo[e] > hi[e])
            return false;
    return true;
}

} // namespace perple::core::detail

#endif // PERPLE_CORE_COMPILED_ATOMS_H
