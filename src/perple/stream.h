/**
 * @file
 * The streaming epoch-pipelined outcome analysis (DESIGN.md §9).
 *
 * Classic batch mode executes all N iterations, then counts — peak
 * memory is the full buf working set and the counters sit idle during
 * execution. The streaming pipeline instead publishes the run in
 * fixed-size epochs through a bounded ring (perple/epoch_ring.h) while
 * COUNTH drains published epochs concurrently on the shared thread
 * pool. Counting uses the bounded evaluation of HeuristicCounter:
 * pivots whose deciding partner index lies past the publication
 * watermark are deferred all-or-nothing and retried at later
 * watermarks, so the merged counts are bit-identical to batch COUNTH
 * of the same buf data for every epoch size, ring depth and thread
 * count. Bufs live in a StreamStore (perple/stream_store.h), which —
 * when spilled to a file — moves the max-N ceiling from RAM to disk.
 */

#ifndef PERPLE_CORE_STREAM_H
#define PERPLE_CORE_STREAM_H

#include <cstdint>
#include <vector>

#include "litmus/outcome.h"
#include "perple/converter.h"
#include "perple/counters.h"
#include "perple/harness.h"

namespace perple::stream
{

/**
 * Incremental COUNTH over a run published epoch by epoch.
 *
 * Feed analyzeEpoch() each contiguous published range in order, then
 * call finish() once everything is published; the result equals
 * HeuristicCounter::count() over the full run bit for bit (per-pivot
 * indicators commute, and a pivot is counted exactly once: either in
 * the epoch pass that decided it or in the deferred retry that did).
 */
class EpochAnalyzer
{
  public:
    /**
     * @param counter The heuristic counter (outlives the analyzer).
     * @param iterations Full run length N.
     * @param bufs The run's buf base pointers (a StreamStore's
     *        rawBufs(), or any batch-layout bufs); reads stay below
     *        the watermark passed to analyzeEpoch().
     * @param mode Frame-sharing semantics.
     * @param threads Analysis threads (0 = hardware concurrency,
     *        1 = serial).
     */
    EpochAnalyzer(const core::HeuristicCounter &counter,
                  std::int64_t iterations, const core::RawBufs &bufs,
                  core::CountMode mode, std::size_t threads);

    /**
     * Count pivots [@p begin, @p end) with watermark @p end (every
     * buf value below @p end is published), and retry the deferred
     * backlog at the new watermark. Epochs must be contiguous and in
     * order starting at 0.
     */
    void analyzeEpoch(std::int64_t begin, std::int64_t end);

    /**
     * Final counts. Requires every epoch to have been analyzed (the
     * last watermark reached N); any still-deferred pivot is decided
     * here at watermark N, where deferral is impossible.
     */
    core::Counts finish();

    /** Pivots deferred at least once (epoch-seam crossings). */
    std::int64_t
    deferredSeamPivots() const
    {
        return deferredSeamPivots_;
    }

    /** Largest deferred backlog observed after any epoch. */
    std::int64_t
    peakDeferredBacklog() const
    {
        return peakDeferredBacklog_;
    }

  private:
    const core::HeuristicCounter &counter_;
    std::int64_t iterations_;
    const core::RawBufs &bufs_;
    core::CountMode mode_;
    std::size_t threads_;

    /** Per-shard partial counts, merged in finish(). */
    std::vector<core::Counts> partial_;

    /** Per-shard deferral scratch of the current epoch pass. */
    std::vector<std::vector<std::int64_t>> shardDeferred_;

    /** Pivots awaiting a higher watermark. */
    std::vector<std::int64_t> backlog_;
    std::vector<std::int64_t> retryScratch_;

    std::int64_t analyzedEnd_ = 0;
    std::int64_t deferredSeamPivots_ = 0;
    std::int64_t peakDeferredBacklog_ = 0;
};

/**
 * Batch-input convenience: stream COUNTH over already-complete bufs in
 * epochs of @p epoch_iters. Exists for capture re-analysis
 * (`perple_trace analyze --stream` counts an mmap'd .plt epoch by
 * epoch, never faulting the whole file at once) and for the
 * bit-identity property tests. @p stats, when non-null, receives the
 * pipeline observability fields (counting-side only).
 */
core::Counts countHeuristicEpochs(const core::HeuristicCounter &counter,
                                  std::int64_t iterations,
                                  const core::RawBufs &bufs,
                                  std::int64_t epoch_iters,
                                  core::CountMode mode,
                                  std::size_t threads,
                                  core::StreamRunStats *stats = nullptr);

/**
 * The streaming implementation behind core::runPerpetual (dispatched
 * when HarnessConfig::streamEpochIters > 0): execution and COUNTH run
 * concurrently, overlapped end to end; the exhaustive counter (when
 * requested) runs post-hoc over the completed store via
 * core::analyzeBufs. Fills @p result the same way batch runPerpetual
 * does, except run.bufs stays empty (the data lives in the pipeline's
 * store) and streamStats is set.
 */
void runPerpetualStreaming(const core::PerpetualTest &perpetual,
                           std::int64_t iterations,
                           const std::vector<litmus::Outcome> &outcomes,
                           const core::HarnessConfig &config,
                           core::HarnessResult &result);

} // namespace perple::stream

#endif // PERPLE_CORE_STREAM_H
