#include "perple/perpetual_outcome.h"

#include <algorithm>
#include <set>

#include "common/error.h"
#include "common/strings.h"

namespace perple::core
{

using litmus::Condition;
using litmus::LocationId;
using litmus::Outcome;
using litmus::Test;
using litmus::ThreadId;
using litmus::Value;

namespace
{

/** True when @p thread performs at least one load in @p test. */
bool
isLoadThread(const Test &test, ThreadId thread)
{
    return test.threads[static_cast<std::size_t>(thread)].numLoads() > 0;
}

/** Render a buf access like "buf_0[n_0]" / "buf_1[2*n_1 + 1]". */
std::string
bufAccessText(const BufAccess &access)
{
    if (access.loadsPerIteration == 1)
        return format("buf_%d[n_%d]", access.thread, access.thread);
    return format("buf_%d[%d*n_%d + %d]", access.thread,
                  access.loadsPerIteration, access.thread, access.slot);
}

/** Render "k*idx + c" with idx named after its thread. */
std::string
sequenceText(const Atom &atom, std::int64_t offset_delta)
{
    const std::int64_t c = atom.offset + offset_delta;
    const char *var = atom.indexIsFrame ? "n" : "q";
    std::string idx = format("%s_%d", var, atom.indexThread);
    std::string out;
    if (atom.stride == 1)
        out = idx;
    else
        out = format("%lld*%s", static_cast<long long>(atom.stride),
                     idx.c_str());
    if (c > 0)
        out += format(" + %lld", static_cast<long long>(c));
    else if (c < 0)
        out += format(" - %lld", static_cast<long long>(-c));
    return out;
}

} // namespace

std::string
PerpetualOutcome::describe(const Test &) const
{
    std::vector<std::string> parts;
    for (const auto &atom : atoms) {
        const std::string lhs = bufAccessText(atom.value);
        if (atom.kind == Atom::Kind::ReadsAtOrAfter) {
            parts.push_back(lhs + " >= " + sequenceText(atom, 0));
        } else {
            parts.push_back(lhs + " <= " + sequenceText(atom, -1));
        }
    }
    return join(parts, " && ");
}

PerpetualOutcome
buildPerpetualOutcome(const Test &test, const Outcome &outcome)
{
    checkUser(!outcome.hasMemoryCondition(),
              "outcome '" + outcome.toString(test) +
                  "' has final-memory conditions and cannot be made "
                  "perpetual (Section V-C)");

    PerpetualOutcome perpetual;
    perpetual.originalText = outcome.toString(test);
    perpetual.label = outcome.label(test);
    perpetual.frameThreads = test.loadThreads();
    perpetual.numConditions =
        static_cast<int>(outcome.conditions.size());

    std::set<ThreadId> existential;

    for (std::size_t c = 0; c < outcome.conditions.size(); ++c) {
        const Condition &cond = outcome.conditions[c];
        checkInternal(cond.kind == Condition::Kind::Register,
                      "memory condition survived the convertibility "
                      "check");

        const int load_index =
            test.loadIndexForRegister(cond.thread, cond.reg);
        checkUser(load_index >= 0,
                  "condition register is never loaded");
        const auto &thread =
            test.threads[static_cast<std::size_t>(cond.thread)];
        const LocationId loc =
            thread.instructions[static_cast<std::size_t>(load_index)]
                .loc;
        const std::int64_t k = test.strideFor(loc);

        BufAccess access;
        access.thread = cond.thread;
        access.loadsPerIteration = thread.numLoads();
        access.slot = thread.loadSlotForRegister(cond.reg);

        if (cond.value != 0) {
            // Step 1/3/4 for an rf edge: the unique store of this value.
            ThreadId store_thread = -1;
            int store_index = -1;
            checkUser(test.findStoreOf(loc, cond.value, store_thread,
                                       store_index),
                      "condition value has no matching store");
            Atom atom;
            atom.kind = Atom::Kind::ReadsAtOrAfter;
            atom.value = access;
            atom.indexThread = store_thread;
            atom.indexIsFrame = isLoadThread(test, store_thread);
            atom.stride = k;
            atom.offset = cond.value;
            atom.checkResidue = k > 1;
            atom.conditionIndex = static_cast<int>(c);
            if (!atom.indexIsFrame)
                existential.insert(store_thread);
            perpetual.atoms.push_back(atom);
        } else {
            // Step 1/3/4 for fr edges: older than every store to loc.
            // A location nothing stores to always reads 0: the
            // condition is trivially true and contributes no atoms.
            const auto stores = test.storesTo(loc);
            for (const auto &[store_thread, store_index] : stores) {
                const auto &store_instr =
                    test.threads[static_cast<std::size_t>(store_thread)]
                        .instructions[static_cast<std::size_t>(
                            store_index)];
                Atom atom;
                atom.kind = Atom::Kind::ReadsBefore;
                atom.value = access;
                atom.indexThread = store_thread;
                atom.indexIsFrame = isLoadThread(test, store_thread);
                atom.stride = k;
                atom.offset = store_instr.value;
                atom.checkResidue = false;
                atom.conditionIndex = static_cast<int>(c);
                if (!atom.indexIsFrame)
                    existential.insert(store_thread);
                perpetual.atoms.push_back(atom);
            }
        }
    }

    perpetual.existentialThreads.assign(existential.begin(),
                                        existential.end());
    return perpetual;
}

std::vector<PerpetualOutcome>
buildPerpetualOutcomes(const Test &test,
                       const std::vector<Outcome> &outcomes)
{
    std::vector<PerpetualOutcome> result;
    result.reserve(outcomes.size());
    for (const auto &outcome : outcomes)
        result.push_back(buildPerpetualOutcome(test, outcome));
    return result;
}

} // namespace perple::core
