/**
 * @file
 * An exact O(N log N) exhaustive counter for two-frame-thread
 * perpetual outcomes — an extension beyond the paper.
 *
 * Section VII-B shows the exhaustive counter's N^{T_L} frame scan is
 * impractical at scale, which is why the paper's evaluation falls back
 * to the linear heuristic. For the most common case (T_L = 2, no
 * store-only threads in the outcome — 24 of the 34 suite tests), the
 * frame predicate decomposes into per-thread interval constraints:
 * every atom either filters one index locally or bounds the partner
 * index by an interval computed from a loaded value. Counting the
 * satisfying pairs is then offline 2-D dominance counting: sweep one
 * index, maintain a Fenwick tree of currently-active partner indices,
 * and sum interval queries. The result equals the brute-force count of
 * Algorithm 1 over all N^2 frames (per outcome, i.e. the paper's
 * Figure 13 "independent" convention), at a cost comparable to the
 * heuristic's single pass.
 */

#ifndef PERPLE_CORE_FAST_COUNTER_H
#define PERPLE_CORE_FAST_COUNTER_H

#include <cstdint>
#include <vector>

#include "litmus/test.h"
#include "perple/perpetual_outcome.h"

namespace perple::core
{

/** Exact frame counts for one T_L = 2 outcome in O(N log N). */
class FastExhaustiveCounter
{
  public:
    /**
     * @param test The original test.
     * @param outcome The perpetual outcome to count.
     * @throws UserError when the outcome is not applicable (use
     *         isApplicable() to probe).
     */
    FastExhaustiveCounter(const litmus::Test &test,
                          PerpetualOutcome outcome);

    /**
     * True when @p outcome can be counted by this algorithm: exactly
     * two frame threads and no existential (store-only) index
     * variables.
     */
    static bool isApplicable(const litmus::Test &test,
                             const PerpetualOutcome &outcome);

    /**
     * Count the frames of an N-iteration run satisfying the outcome —
     * exactly the number Algorithm 1 reports for this outcome in
     * CountMode::Independent.
     *
     * @param iterations N.
     * @param bufs Buf arrays (paper layout).
     */
    std::uint64_t
    count(std::int64_t iterations,
          const std::vector<std::vector<litmus::Value>> &bufs) const;

  private:
    PerpetualOutcome outcome_;
    litmus::ThreadId threadA_ = -1; ///< First frame thread (swept).
    litmus::ThreadId threadB_ = -1; ///< Second frame thread (tree).
};

} // namespace perple::core

#endif // PERPLE_CORE_FAST_COUNTER_H
