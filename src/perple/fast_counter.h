/**
 * @file
 * An exact O(N log N) exhaustive counter for two-frame-thread
 * perpetual outcomes — an extension beyond the paper.
 *
 * Section VII-B shows the exhaustive counter's N^{T_L} frame scan is
 * impractical at scale, which is why the paper's evaluation falls back
 * to the linear heuristic. For the most common case (T_L = 2, no
 * store-only threads in the outcome — 24 of the 34 suite tests), the
 * frame predicate decomposes into per-thread interval constraints:
 * every atom either filters one index locally or bounds the partner
 * index by an interval computed from a loaded value. Counting the
 * satisfying pairs is then offline 2-D dominance counting: sweep one
 * index, maintain a Fenwick tree of currently-active partner indices,
 * and sum interval queries. The result equals the brute-force count of
 * Algorithm 1 over all N^2 frames (per outcome, i.e. the paper's
 * Figure 13 "independent" convention), at a cost comparable to the
 * heuristic's single pass.
 */

#ifndef PERPLE_CORE_FAST_COUNTER_H
#define PERPLE_CORE_FAST_COUNTER_H

#include <cstdint>
#include <vector>

#include "litmus/test.h"
#include "perple/counters.h"
#include "perple/perpetual_outcome.h"

namespace perple::core
{

/** Exact frame counts for one T_L = 2 outcome in O(N log N). */
class FastExhaustiveCounter
{
  public:
    /**
     * @param test The original test.
     * @param outcome The perpetual outcome to count.
     * @throws UserError when the outcome is not applicable (use
     *         isApplicable() to probe).
     */
    FastExhaustiveCounter(const litmus::Test &test,
                          PerpetualOutcome outcome);

    /**
     * True when @p outcome can be counted by this algorithm: exactly
     * two frame threads and no existential (store-only) index
     * variables.
     */
    static bool isApplicable(const litmus::Test &test,
                             const PerpetualOutcome &outcome);

    /**
     * Count the frames of an N-iteration run satisfying the outcome —
     * exactly the number Algorithm 1 reports for this outcome in
     * CountMode::Independent.
     *
     * Parallelization (threads > 1 or 0 = hardware concurrency): the
     * per-index interval construction shards over the tree thread's
     * range, and the sweep shards over the swept thread's range with
     * one Fenwick tree built per shard (seeded with the intervals
     * active at the shard's start position). Every shard contributes
     * the same per-index terms as the serial sweep, so the summed
     * total is bit-identical for every thread count.
     *
     * @param iterations N.
     * @param bufs Buf arrays (paper layout).
     * @param threads Analysis threads (0 = hardware concurrency,
     *        1 = the serial reference path).
     */
    std::uint64_t
    count(std::int64_t iterations,
          const std::vector<std::vector<litmus::Value>> &bufs,
          std::size_t threads = 1) const;

    /** As above over precollected raw buf pointers. */
    std::uint64_t count(std::int64_t iterations, const RawBufs &bufs,
                        std::size_t threads = 1) const;

    /**
     * Select the evaluation engine (kernels.h): Interpreter keeps the
     * scalar per-index constraint scan, anything else batches it in
     * fixed-width blocks (bit-identical results; the scan is pure).
     */
    void
    setKernelMode(KernelMode mode)
    {
        kernelMode_ = mode;
    }

  private:
    /** One atom of a side, flattened for the per-index scan. */
    struct SideAtom
    {
        std::int32_t loadsPerIteration = 0;
        std::int32_t slot = 0;
        bool readsAtOrAfter = true;
        bool checkResidue = false;
        bool indexSelf = false; ///< idx is this side's own index.
        std::int64_t stride = 1;
        std::int64_t offset = 0;
    };

    /** Valid + partner-interval summary for one side index. */
    struct SideConstraint
    {
        bool valid = true;
        std::int64_t lo = 0;
        std::int64_t hi = 0;
    };

    SideConstraint constrain(const std::vector<SideAtom> &atoms,
                             const litmus::Value *buf, std::int64_t n,
                             std::int64_t iterations) const;

    /**
     * constrain() for indices [n0, n0 + width), atom-major with the
     * per-atom branches hoisted out of the lane loop and stride == 1
     * div-free fast paths — the same outputs, computed blockwise.
     */
    void constrainBlock(const std::vector<SideAtom> &atoms,
                        const litmus::Value *buf, std::int64_t n0,
                        std::size_t width, std::int64_t iterations,
                        SideConstraint *out) const;

    PerpetualOutcome outcome_;
    KernelMode kernelMode_ = KernelMode::Auto;
    litmus::ThreadId threadA_ = -1; ///< First frame thread (swept).
    litmus::ThreadId threadB_ = -1; ///< Second frame thread (tree).
    std::vector<SideAtom> atomsA_;  ///< Atoms loaded on threadA_.
    std::vector<SideAtom> atomsB_;  ///< Atoms loaded on threadB_.
};

} // namespace perple::core

#endif // PERPLE_CORE_FAST_COUNTER_H
