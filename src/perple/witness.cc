#include "perple/witness.h"

#include "common/error.h"
#include "common/strings.h"

namespace perple::core
{

using litmus::LocationId;
using litmus::ThreadId;
using litmus::Value;

bool
decodeWriter(const PerpetualTest &perpetual, LocationId loc,
             Value value, ThreadId &thread, std::int64_t &iteration)
{
    if (value == 0)
        return false;
    const litmus::Test &test = perpetual.original;
    const std::int64_t k =
        perpetual.strides[static_cast<std::size_t>(loc)];
    for (const auto &[store_thread, store_index] : test.storesTo(loc)) {
        const Value offset =
            test.threads[static_cast<std::size_t>(store_thread)]
                .instructions[static_cast<std::size_t>(store_index)]
                .value;
        const Value d = value - offset;
        if (d >= 0 && d % k == 0) {
            thread = store_thread;
            iteration = d / k;
            return true;
        }
    }
    return false;
}

std::string
explainFrame(const PerpetualTest &perpetual,
             const PerpetualOutcome &outcome,
             const std::vector<std::int64_t> &frame,
             const sim::RunResult &run)
{
    const litmus::Test &test = perpetual.original;
    checkUser(frame.size() == outcome.frameThreads.size(),
              "frame arity does not match the outcome");

    std::string out = "witness for outcome " + outcome.originalText +
                      "\n  frame:";
    std::vector<std::int64_t> idx_by_thread(
        static_cast<std::size_t>(test.numThreads()), -1);
    for (std::size_t d = 0; d < frame.size(); ++d) {
        const ThreadId t = outcome.frameThreads[d];
        idx_by_thread[static_cast<std::size_t>(t)] = frame[d];
        out += format(" n_%d = %lld", t,
                      static_cast<long long>(frame[d]));
    }
    out += "\n";

    for (const Atom &atom : outcome.atoms) {
        const BufAccess &access = atom.value;
        const std::int64_t n =
            idx_by_thread[static_cast<std::size_t>(access.thread)];
        const Value val =
            run.bufs[static_cast<std::size_t>(access.thread)]
                [static_cast<std::size_t>(
                    access.loadsPerIteration * n + access.slot)];

        // Which load / location this atom constrains.
        LocationId loc = -1;
        int slot = 0;
        for (const auto &instr :
             test.threads[static_cast<std::size_t>(access.thread)]
                 .instructions) {
            if (!instr.readsRegister())
                continue;
            if (slot++ == access.slot) {
                loc = instr.loc;
                break;
            }
        }
        const std::string &loc_name =
            test.locations[static_cast<std::size_t>(loc)];

        ThreadId writer = -1;
        std::int64_t writer_iter = -1;
        std::string provenance;
        if (decodeWriter(perpetual, loc, val, writer, writer_iter)) {
            provenance = format(
                "written by thread %d in iteration %lld", writer,
                static_cast<long long>(writer_iter));
        } else {
            provenance = "the initial value";
        }

        const std::string idx_text = format(
            "%s_%d%s", atom.indexIsFrame ? "n" : "q",
            atom.indexThread,
            atom.indexIsFrame
                ? format(" = %lld",
                         static_cast<long long>(idx_by_thread[
                             static_cast<std::size_t>(
                                 atom.indexThread)]))
                      .c_str()
                : "");

        if (atom.kind == Atom::Kind::ReadsAtOrAfter) {
            out += format(
                "  thread %d iteration %lld loaded [%s] = %lld (%s): "
                "rf — at or after the frame store of %s "
                "(sequence %lld*idx + %lld)\n",
                access.thread, static_cast<long long>(n),
                loc_name.c_str(), static_cast<long long>(val),
                provenance.c_str(), idx_text.c_str(),
                static_cast<long long>(atom.stride),
                static_cast<long long>(atom.offset));
        } else {
            out += format(
                "  thread %d iteration %lld loaded [%s] = %lld (%s): "
                "fr — older than the frame store of %s "
                "(sequence %lld*idx + %lld)\n",
                access.thread, static_cast<long long>(n),
                loc_name.c_str(), static_cast<long long>(val),
                provenance.c_str(), idx_text.c_str(),
                static_cast<long long>(atom.stride),
                static_cast<long long>(atom.offset));
        }
    }
    out += "  perpetual form: " + outcome.describe(test) + "\n";
    return out;
}

} // namespace perple::core
