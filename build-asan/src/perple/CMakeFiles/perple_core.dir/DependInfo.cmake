
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perple/codegen.cc" "src/perple/CMakeFiles/perple_core.dir/codegen.cc.o" "gcc" "src/perple/CMakeFiles/perple_core.dir/codegen.cc.o.d"
  "/root/repo/src/perple/converter.cc" "src/perple/CMakeFiles/perple_core.dir/converter.cc.o" "gcc" "src/perple/CMakeFiles/perple_core.dir/converter.cc.o.d"
  "/root/repo/src/perple/counters.cc" "src/perple/CMakeFiles/perple_core.dir/counters.cc.o" "gcc" "src/perple/CMakeFiles/perple_core.dir/counters.cc.o.d"
  "/root/repo/src/perple/fast_counter.cc" "src/perple/CMakeFiles/perple_core.dir/fast_counter.cc.o" "gcc" "src/perple/CMakeFiles/perple_core.dir/fast_counter.cc.o.d"
  "/root/repo/src/perple/harness.cc" "src/perple/CMakeFiles/perple_core.dir/harness.cc.o" "gcc" "src/perple/CMakeFiles/perple_core.dir/harness.cc.o.d"
  "/root/repo/src/perple/perpetual_outcome.cc" "src/perple/CMakeFiles/perple_core.dir/perpetual_outcome.cc.o" "gcc" "src/perple/CMakeFiles/perple_core.dir/perpetual_outcome.cc.o.d"
  "/root/repo/src/perple/skew.cc" "src/perple/CMakeFiles/perple_core.dir/skew.cc.o" "gcc" "src/perple/CMakeFiles/perple_core.dir/skew.cc.o.d"
  "/root/repo/src/perple/witness.cc" "src/perple/CMakeFiles/perple_core.dir/witness.cc.o" "gcc" "src/perple/CMakeFiles/perple_core.dir/witness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/perple_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/litmus/CMakeFiles/perple_litmus.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/perple_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/runtime/CMakeFiles/perple_runtime.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/litmus7/CMakeFiles/perple_litmus7.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/stats/CMakeFiles/perple_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
