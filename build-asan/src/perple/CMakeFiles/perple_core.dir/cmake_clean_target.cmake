file(REMOVE_RECURSE
  "libperple_core.a"
)
