# Empty dependencies file for perple_core.
# This may be replaced when dependencies are built.
