file(REMOVE_RECURSE
  "CMakeFiles/perple_core.dir/codegen.cc.o"
  "CMakeFiles/perple_core.dir/codegen.cc.o.d"
  "CMakeFiles/perple_core.dir/converter.cc.o"
  "CMakeFiles/perple_core.dir/converter.cc.o.d"
  "CMakeFiles/perple_core.dir/counters.cc.o"
  "CMakeFiles/perple_core.dir/counters.cc.o.d"
  "CMakeFiles/perple_core.dir/fast_counter.cc.o"
  "CMakeFiles/perple_core.dir/fast_counter.cc.o.d"
  "CMakeFiles/perple_core.dir/harness.cc.o"
  "CMakeFiles/perple_core.dir/harness.cc.o.d"
  "CMakeFiles/perple_core.dir/perpetual_outcome.cc.o"
  "CMakeFiles/perple_core.dir/perpetual_outcome.cc.o.d"
  "CMakeFiles/perple_core.dir/skew.cc.o"
  "CMakeFiles/perple_core.dir/skew.cc.o.d"
  "CMakeFiles/perple_core.dir/witness.cc.o"
  "CMakeFiles/perple_core.dir/witness.cc.o.d"
  "libperple_core.a"
  "libperple_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perple_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
