# Empty dependencies file for perple_model.
# This may be replaced when dependencies are built.
