file(REMOVE_RECURSE
  "CMakeFiles/perple_model.dir/axiomatic.cc.o"
  "CMakeFiles/perple_model.dir/axiomatic.cc.o.d"
  "CMakeFiles/perple_model.dir/classify.cc.o"
  "CMakeFiles/perple_model.dir/classify.cc.o.d"
  "CMakeFiles/perple_model.dir/final_state.cc.o"
  "CMakeFiles/perple_model.dir/final_state.cc.o.d"
  "CMakeFiles/perple_model.dir/hbgraph.cc.o"
  "CMakeFiles/perple_model.dir/hbgraph.cc.o.d"
  "CMakeFiles/perple_model.dir/operational.cc.o"
  "CMakeFiles/perple_model.dir/operational.cc.o.d"
  "libperple_model.a"
  "libperple_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perple_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
