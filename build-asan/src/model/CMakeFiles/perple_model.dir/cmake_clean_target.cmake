file(REMOVE_RECURSE
  "libperple_model.a"
)
