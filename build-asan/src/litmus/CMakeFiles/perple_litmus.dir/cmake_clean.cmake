file(REMOVE_RECURSE
  "CMakeFiles/perple_litmus.dir/builder.cc.o"
  "CMakeFiles/perple_litmus.dir/builder.cc.o.d"
  "CMakeFiles/perple_litmus.dir/outcome.cc.o"
  "CMakeFiles/perple_litmus.dir/outcome.cc.o.d"
  "CMakeFiles/perple_litmus.dir/parser.cc.o"
  "CMakeFiles/perple_litmus.dir/parser.cc.o.d"
  "CMakeFiles/perple_litmus.dir/registry.cc.o"
  "CMakeFiles/perple_litmus.dir/registry.cc.o.d"
  "CMakeFiles/perple_litmus.dir/test.cc.o"
  "CMakeFiles/perple_litmus.dir/test.cc.o.d"
  "CMakeFiles/perple_litmus.dir/validator.cc.o"
  "CMakeFiles/perple_litmus.dir/validator.cc.o.d"
  "CMakeFiles/perple_litmus.dir/writer.cc.o"
  "CMakeFiles/perple_litmus.dir/writer.cc.o.d"
  "libperple_litmus.a"
  "libperple_litmus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perple_litmus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
