file(REMOVE_RECURSE
  "libperple_litmus.a"
)
