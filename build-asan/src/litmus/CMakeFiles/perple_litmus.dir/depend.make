# Empty dependencies file for perple_litmus.
# This may be replaced when dependencies are built.
