
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/litmus/builder.cc" "src/litmus/CMakeFiles/perple_litmus.dir/builder.cc.o" "gcc" "src/litmus/CMakeFiles/perple_litmus.dir/builder.cc.o.d"
  "/root/repo/src/litmus/outcome.cc" "src/litmus/CMakeFiles/perple_litmus.dir/outcome.cc.o" "gcc" "src/litmus/CMakeFiles/perple_litmus.dir/outcome.cc.o.d"
  "/root/repo/src/litmus/parser.cc" "src/litmus/CMakeFiles/perple_litmus.dir/parser.cc.o" "gcc" "src/litmus/CMakeFiles/perple_litmus.dir/parser.cc.o.d"
  "/root/repo/src/litmus/registry.cc" "src/litmus/CMakeFiles/perple_litmus.dir/registry.cc.o" "gcc" "src/litmus/CMakeFiles/perple_litmus.dir/registry.cc.o.d"
  "/root/repo/src/litmus/test.cc" "src/litmus/CMakeFiles/perple_litmus.dir/test.cc.o" "gcc" "src/litmus/CMakeFiles/perple_litmus.dir/test.cc.o.d"
  "/root/repo/src/litmus/validator.cc" "src/litmus/CMakeFiles/perple_litmus.dir/validator.cc.o" "gcc" "src/litmus/CMakeFiles/perple_litmus.dir/validator.cc.o.d"
  "/root/repo/src/litmus/writer.cc" "src/litmus/CMakeFiles/perple_litmus.dir/writer.cc.o" "gcc" "src/litmus/CMakeFiles/perple_litmus.dir/writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/perple_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
