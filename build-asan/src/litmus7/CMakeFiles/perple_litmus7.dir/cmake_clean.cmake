file(REMOVE_RECURSE
  "CMakeFiles/perple_litmus7.dir/cost_model.cc.o"
  "CMakeFiles/perple_litmus7.dir/cost_model.cc.o.d"
  "CMakeFiles/perple_litmus7.dir/runner.cc.o"
  "CMakeFiles/perple_litmus7.dir/runner.cc.o.d"
  "libperple_litmus7.a"
  "libperple_litmus7.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perple_litmus7.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
