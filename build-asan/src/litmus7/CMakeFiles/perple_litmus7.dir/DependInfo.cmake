
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/litmus7/cost_model.cc" "src/litmus7/CMakeFiles/perple_litmus7.dir/cost_model.cc.o" "gcc" "src/litmus7/CMakeFiles/perple_litmus7.dir/cost_model.cc.o.d"
  "/root/repo/src/litmus7/runner.cc" "src/litmus7/CMakeFiles/perple_litmus7.dir/runner.cc.o" "gcc" "src/litmus7/CMakeFiles/perple_litmus7.dir/runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/perple_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/litmus/CMakeFiles/perple_litmus.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/perple_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/runtime/CMakeFiles/perple_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
