file(REMOVE_RECURSE
  "libperple_litmus7.a"
)
