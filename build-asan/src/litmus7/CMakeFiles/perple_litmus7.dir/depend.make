# Empty dependencies file for perple_litmus7.
# This may be replaced when dependencies are built.
