# CMake generated Testfile for 
# Source directory: /root/repo/src/litmus7
# Build directory: /root/repo/build-asan/src/litmus7
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
