file(REMOVE_RECURSE
  "CMakeFiles/perple_common.dir/error.cc.o"
  "CMakeFiles/perple_common.dir/error.cc.o.d"
  "CMakeFiles/perple_common.dir/logging.cc.o"
  "CMakeFiles/perple_common.dir/logging.cc.o.d"
  "CMakeFiles/perple_common.dir/rng.cc.o"
  "CMakeFiles/perple_common.dir/rng.cc.o.d"
  "CMakeFiles/perple_common.dir/strings.cc.o"
  "CMakeFiles/perple_common.dir/strings.cc.o.d"
  "CMakeFiles/perple_common.dir/thread_pool.cc.o"
  "CMakeFiles/perple_common.dir/thread_pool.cc.o.d"
  "CMakeFiles/perple_common.dir/timing.cc.o"
  "CMakeFiles/perple_common.dir/timing.cc.o.d"
  "libperple_common.a"
  "libperple_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perple_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
