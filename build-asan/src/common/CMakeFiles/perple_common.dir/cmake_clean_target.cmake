file(REMOVE_RECURSE
  "libperple_common.a"
)
