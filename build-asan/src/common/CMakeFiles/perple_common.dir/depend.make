# Empty dependencies file for perple_common.
# This may be replaced when dependencies are built.
