# CMake generated Testfile for 
# Source directory: /root/repo/src/generate
# Build directory: /root/repo/build-asan/src/generate
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
