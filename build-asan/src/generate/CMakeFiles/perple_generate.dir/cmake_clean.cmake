file(REMOVE_RECURSE
  "CMakeFiles/perple_generate.dir/generator.cc.o"
  "CMakeFiles/perple_generate.dir/generator.cc.o.d"
  "libperple_generate.a"
  "libperple_generate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perple_generate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
