# Empty dependencies file for perple_generate.
# This may be replaced when dependencies are built.
