file(REMOVE_RECURSE
  "libperple_generate.a"
)
