file(REMOVE_RECURSE
  "libperple_stats.a"
)
