file(REMOVE_RECURSE
  "CMakeFiles/perple_stats.dir/histogram.cc.o"
  "CMakeFiles/perple_stats.dir/histogram.cc.o.d"
  "CMakeFiles/perple_stats.dir/summary.cc.o"
  "CMakeFiles/perple_stats.dir/summary.cc.o.d"
  "CMakeFiles/perple_stats.dir/table.cc.o"
  "CMakeFiles/perple_stats.dir/table.cc.o.d"
  "libperple_stats.a"
  "libperple_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perple_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
