# Empty dependencies file for perple_stats.
# This may be replaced when dependencies are built.
