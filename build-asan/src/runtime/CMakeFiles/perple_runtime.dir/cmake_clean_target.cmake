file(REMOVE_RECURSE
  "libperple_runtime.a"
)
