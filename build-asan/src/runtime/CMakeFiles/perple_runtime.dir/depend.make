# Empty dependencies file for perple_runtime.
# This may be replaced when dependencies are built.
