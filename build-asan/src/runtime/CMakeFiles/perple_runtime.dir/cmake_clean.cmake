file(REMOVE_RECURSE
  "CMakeFiles/perple_runtime.dir/barrier.cc.o"
  "CMakeFiles/perple_runtime.dir/barrier.cc.o.d"
  "CMakeFiles/perple_runtime.dir/native_runner.cc.o"
  "CMakeFiles/perple_runtime.dir/native_runner.cc.o.d"
  "libperple_runtime.a"
  "libperple_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perple_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
