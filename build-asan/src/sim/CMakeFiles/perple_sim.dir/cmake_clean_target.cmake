file(REMOVE_RECURSE
  "libperple_sim.a"
)
