file(REMOVE_RECURSE
  "CMakeFiles/perple_sim.dir/machine.cc.o"
  "CMakeFiles/perple_sim.dir/machine.cc.o.d"
  "CMakeFiles/perple_sim.dir/program.cc.o"
  "CMakeFiles/perple_sim.dir/program.cc.o.d"
  "libperple_sim.a"
  "libperple_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perple_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
