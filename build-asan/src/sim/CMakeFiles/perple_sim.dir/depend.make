# Empty dependencies file for perple_sim.
# This may be replaced when dependencies are built.
