# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/common_test[1]_include.cmake")
include("/root/repo/build-asan/tests/stats_test[1]_include.cmake")
include("/root/repo/build-asan/tests/litmus_ir_test[1]_include.cmake")
include("/root/repo/build-asan/tests/litmus_parser_test[1]_include.cmake")
include("/root/repo/build-asan/tests/litmus_validator_test[1]_include.cmake")
include("/root/repo/build-asan/tests/litmus_registry_test[1]_include.cmake")
include("/root/repo/build-asan/tests/model_test[1]_include.cmake")
include("/root/repo/build-asan/tests/sim_machine_test[1]_include.cmake")
include("/root/repo/build-asan/tests/sim_conformance_test[1]_include.cmake")
include("/root/repo/build-asan/tests/runtime_test[1]_include.cmake")
include("/root/repo/build-asan/tests/litmus7_runner_test[1]_include.cmake")
include("/root/repo/build-asan/tests/converter_test[1]_include.cmake")
include("/root/repo/build-asan/tests/perpetual_outcome_test[1]_include.cmake")
include("/root/repo/build-asan/tests/counters_test[1]_include.cmake")
include("/root/repo/build-asan/tests/harness_test[1]_include.cmake")
include("/root/repo/build-asan/tests/codegen_test[1]_include.cmake")
include("/root/repo/build-asan/tests/integration_test[1]_include.cmake")
include("/root/repo/build-asan/tests/generator_test[1]_include.cmake")
include("/root/repo/build-asan/tests/witness_test[1]_include.cmake")
include("/root/repo/build-asan/tests/rmw_test[1]_include.cmake")
include("/root/repo/build-asan/tests/fast_counter_test[1]_include.cmake")
include("/root/repo/build-asan/tests/parallel_counters_test[1]_include.cmake")
