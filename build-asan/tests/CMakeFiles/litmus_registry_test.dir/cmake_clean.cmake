file(REMOVE_RECURSE
  "CMakeFiles/litmus_registry_test.dir/litmus_registry_test.cc.o"
  "CMakeFiles/litmus_registry_test.dir/litmus_registry_test.cc.o.d"
  "litmus_registry_test"
  "litmus_registry_test.pdb"
  "litmus_registry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/litmus_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
