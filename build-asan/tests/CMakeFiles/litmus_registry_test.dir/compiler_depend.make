# Empty compiler generated dependencies file for litmus_registry_test.
# This may be replaced when dependencies are built.
