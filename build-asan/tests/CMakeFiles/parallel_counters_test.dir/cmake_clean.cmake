file(REMOVE_RECURSE
  "CMakeFiles/parallel_counters_test.dir/parallel_counters_test.cc.o"
  "CMakeFiles/parallel_counters_test.dir/parallel_counters_test.cc.o.d"
  "parallel_counters_test"
  "parallel_counters_test.pdb"
  "parallel_counters_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_counters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
