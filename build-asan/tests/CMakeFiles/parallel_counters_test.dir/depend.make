# Empty dependencies file for parallel_counters_test.
# This may be replaced when dependencies are built.
