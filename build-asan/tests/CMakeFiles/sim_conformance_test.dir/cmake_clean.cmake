file(REMOVE_RECURSE
  "CMakeFiles/sim_conformance_test.dir/sim_conformance_test.cc.o"
  "CMakeFiles/sim_conformance_test.dir/sim_conformance_test.cc.o.d"
  "sim_conformance_test"
  "sim_conformance_test.pdb"
  "sim_conformance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
