# Empty dependencies file for rmw_test.
# This may be replaced when dependencies are built.
