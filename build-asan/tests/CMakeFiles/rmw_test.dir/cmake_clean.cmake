file(REMOVE_RECURSE
  "CMakeFiles/rmw_test.dir/rmw_test.cc.o"
  "CMakeFiles/rmw_test.dir/rmw_test.cc.o.d"
  "rmw_test"
  "rmw_test.pdb"
  "rmw_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
