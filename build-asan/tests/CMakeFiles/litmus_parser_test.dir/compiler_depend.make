# Empty compiler generated dependencies file for litmus_parser_test.
# This may be replaced when dependencies are built.
