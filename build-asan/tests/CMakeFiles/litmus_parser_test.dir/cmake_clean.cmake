file(REMOVE_RECURSE
  "CMakeFiles/litmus_parser_test.dir/litmus_parser_test.cc.o"
  "CMakeFiles/litmus_parser_test.dir/litmus_parser_test.cc.o.d"
  "litmus_parser_test"
  "litmus_parser_test.pdb"
  "litmus_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/litmus_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
