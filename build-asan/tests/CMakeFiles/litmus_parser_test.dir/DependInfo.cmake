
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/litmus_parser_test.cc" "tests/CMakeFiles/litmus_parser_test.dir/litmus_parser_test.cc.o" "gcc" "tests/CMakeFiles/litmus_parser_test.dir/litmus_parser_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/perple/CMakeFiles/perple_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/litmus7/CMakeFiles/perple_litmus7.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/runtime/CMakeFiles/perple_runtime.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/perple_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/generate/CMakeFiles/perple_generate.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/model/CMakeFiles/perple_model.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/litmus/CMakeFiles/perple_litmus.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/stats/CMakeFiles/perple_stats.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/perple_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
