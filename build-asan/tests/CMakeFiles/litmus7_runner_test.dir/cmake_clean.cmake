file(REMOVE_RECURSE
  "CMakeFiles/litmus7_runner_test.dir/litmus7_runner_test.cc.o"
  "CMakeFiles/litmus7_runner_test.dir/litmus7_runner_test.cc.o.d"
  "litmus7_runner_test"
  "litmus7_runner_test.pdb"
  "litmus7_runner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/litmus7_runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
