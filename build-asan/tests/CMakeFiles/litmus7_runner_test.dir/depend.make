# Empty dependencies file for litmus7_runner_test.
# This may be replaced when dependencies are built.
