# Empty compiler generated dependencies file for fast_counter_test.
# This may be replaced when dependencies are built.
