file(REMOVE_RECURSE
  "CMakeFiles/fast_counter_test.dir/fast_counter_test.cc.o"
  "CMakeFiles/fast_counter_test.dir/fast_counter_test.cc.o.d"
  "fast_counter_test"
  "fast_counter_test.pdb"
  "fast_counter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fast_counter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
