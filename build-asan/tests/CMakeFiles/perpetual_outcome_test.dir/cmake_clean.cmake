file(REMOVE_RECURSE
  "CMakeFiles/perpetual_outcome_test.dir/perpetual_outcome_test.cc.o"
  "CMakeFiles/perpetual_outcome_test.dir/perpetual_outcome_test.cc.o.d"
  "perpetual_outcome_test"
  "perpetual_outcome_test.pdb"
  "perpetual_outcome_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perpetual_outcome_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
