# Empty compiler generated dependencies file for perpetual_outcome_test.
# This may be replaced when dependencies are built.
