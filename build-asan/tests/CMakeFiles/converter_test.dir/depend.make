# Empty dependencies file for converter_test.
# This may be replaced when dependencies are built.
