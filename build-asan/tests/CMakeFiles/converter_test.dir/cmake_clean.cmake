file(REMOVE_RECURSE
  "CMakeFiles/converter_test.dir/converter_test.cc.o"
  "CMakeFiles/converter_test.dir/converter_test.cc.o.d"
  "converter_test"
  "converter_test.pdb"
  "converter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/converter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
