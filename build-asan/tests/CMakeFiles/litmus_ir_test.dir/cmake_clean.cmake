file(REMOVE_RECURSE
  "CMakeFiles/litmus_ir_test.dir/litmus_ir_test.cc.o"
  "CMakeFiles/litmus_ir_test.dir/litmus_ir_test.cc.o.d"
  "litmus_ir_test"
  "litmus_ir_test.pdb"
  "litmus_ir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/litmus_ir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
