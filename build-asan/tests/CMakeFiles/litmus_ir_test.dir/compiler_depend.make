# Empty compiler generated dependencies file for litmus_ir_test.
# This may be replaced when dependencies are built.
