file(REMOVE_RECURSE
  "CMakeFiles/litmus_validator_test.dir/litmus_validator_test.cc.o"
  "CMakeFiles/litmus_validator_test.dir/litmus_validator_test.cc.o.d"
  "litmus_validator_test"
  "litmus_validator_test.pdb"
  "litmus_validator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/litmus_validator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
