# Empty compiler generated dependencies file for litmus_validator_test.
# This may be replaced when dependencies are built.
