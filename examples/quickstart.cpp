/**
 * @file
 * Quickstart: the complete PerpLE workflow of the paper's Figure 3 on
 * the store-buffering test.
 *
 *   1. pick a litmus test from the built-in Table II suite;
 *   2. convert it to its perpetual form (Converter);
 *   3. run N synchronization-free iterations and count the outcomes
 *      of interest with both counters (Harness);
 *   4. compare against the litmus7-style baseline in `user` mode.
 *
 * Usage: quickstart [test-name] [iterations]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "perple/perple.h"

int
main(int argc, char **argv)
{
    using namespace perple;

    const std::string test_name = argc > 1 ? argv[1] : "sb";
    const std::int64_t iterations =
        argc > 2 ? std::atoll(argv[2]) : 10000;

    try {
        const litmus::SuiteEntry &entry = litmus::findTest(test_name);
        const litmus::Test &test = entry.test;

        std::printf("=== %s ===\n%s\n", test.name.c_str(),
                    litmus::writeTest(test).c_str());
        std::printf("target outcome: %s (%s under x86-TSO)\n\n",
                    test.target.toString(test).c_str(),
                    entry.expected == litmus::TsoVerdict::Allowed
                        ? "allowed"
                        : "forbidden");

        // --- Conversion (paper Section III). ---
        const core::PerpetualTest perpetual = core::convert(test);
        const auto po = core::buildPerpetualOutcome(test, test.target);
        std::printf("perpetual target outcome: %s\n\n",
                    po.describe(test).c_str());

        // --- Perpetual run (paper Section V-B). ---
        core::HarnessConfig config;
        config.seed = 1;
        // The exhaustive counter is O(N^T_L); cap it for 3-load-thread
        // tests exactly as the evaluation does.
        if (test.numLoadThreads() >= 3)
            config.exhaustiveCap = 500;
        const core::HarnessResult result = core::runPerpetual(
            perpetual, iterations, {test.target}, config);

        std::printf("PerpLE, %lld iterations:\n",
                    static_cast<long long>(iterations));
        std::printf("  exhaustive counter: %llu occurrences "
                    "(over %lld^%d frames) in %s\n",
                    static_cast<unsigned long long>(
                        (*result.exhaustive)[0]),
                    static_cast<long long>(
                        result.exhaustiveIterations),
                    test.numLoadThreads(),
                    formatDuration(result.timing.phaseNs(
                        "count-exhaustive")).c_str());
        std::printf("  heuristic counter:  %llu occurrences in %s\n",
                    static_cast<unsigned long long>(
                        (*result.heuristic)[0]),
                    formatDuration(result.timing.phaseNs(
                        "count-heuristic")).c_str());
        std::printf("  test execution:     %s\n\n",
                    formatDuration(result.timing.phaseNs("exec"))
                        .c_str());

        // --- litmus7 baseline. ---
        litmus7::Litmus7Config baseline_config;
        baseline_config.mode = runtime::SyncMode::User;
        baseline_config.seed = 1;
        const auto baseline = litmus7::runLitmus7(
            test, iterations, {test.target}, baseline_config);
        std::printf("litmus7 (user mode), same iterations:\n");
        std::printf("  target occurrences: %llu\n",
                    static_cast<unsigned long long>(
                        baseline.counts[0]));
        std::printf("  runtime: %s (%.0f%% synchronization)\n",
                    formatDuration(baseline.timing.totalNs()).c_str(),
                    100.0 *
                        static_cast<double>(
                            baseline.timing.phaseNs("sync")) /
                        static_cast<double>(baseline.timing.totalNs()));

        const double perple_rate =
            static_cast<double>((*result.heuristic)[0]) /
            result.heuristicSeconds();
        const double baseline_rate =
            static_cast<double>(baseline.counts[0]) /
            baseline.totalSeconds();
        std::printf("\ndetection rate: PerpLE %.1f/s vs litmus7 "
                    "%.1f/s\n",
                    perple_rate, baseline_rate);
        return 0;
    } catch (const Error &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
