/**
 * @file
 * The PerpLE Converter as a command-line tool (paper Section V-A):
 * given a litmus test — by suite name or as a litmus7-format file —
 * emit the Converter's outputs into a directory:
 *
 *   <name>_thread<t>.s   per-thread perpetual loop, x86-64 assembly
 *   <name>_count.c       exhaustive outcome counter (Algorithm 1)
 *   <name>_count_h.c     heuristic outcome counter (Algorithm 2)
 *   <name>_params.txt    t0_reads .. t{T-1}_reads buf-sizing params
 *   <name>.litmus        the original test, normalized
 *
 * Usage: perple_codegen <test-name | file.litmus> [output-dir]
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "perple/perple.h"

namespace
{

void
writeFile(const std::filesystem::path &path, const std::string &text)
{
    std::ofstream(path) << text;
    std::printf("  wrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace perple;
    namespace fs = std::filesystem;

    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: perple_codegen <test-name|file.litmus> "
                     "[output-dir]\n");
        return 2;
    }
    const std::string spec = argv[1];
    const fs::path out_dir = argc > 2 ? argv[2] : "perple_out";

    try {
        const litmus::Test test = litmus::loadTestSpec(spec);
        litmus::validateOrThrow(test);

        // Outcomes of interest: all register outcomes, target first
        // (so counts[0] is the target tally).
        std::vector<litmus::Outcome> outcomes = {test.target};
        for (const auto &o : litmus::enumerateRegisterOutcomes(test))
            if (!(o == test.target))
                outcomes.push_back(o);

        std::string reason;
        if (!core::isConvertible(test, outcomes, reason)) {
            std::fprintf(stderr,
                         "test '%s' is not convertible: %s\n"
                         "run it with the litmus7 baseline instead "
                         "(Section VII-G).\n",
                         test.name.c_str(), reason.c_str());
            return 1;
        }

        const core::PerpetualTest perpetual = core::convert(test);
        const std::string name = core::identifierFor(test.name);

        fs::create_directories(out_dir);
        std::printf("converting '%s' (T=%d, T_L=%d):\n",
                    test.name.c_str(), test.numThreads(),
                    test.numLoadThreads());

        for (litmus::ThreadId t = 0; t < test.numThreads(); ++t)
            writeFile(out_dir / (name + "_thread" +
                                 std::to_string(t) + ".s"),
                      core::emitThreadAssembly(perpetual, t));
        writeFile(out_dir / (name + "_count.c"),
                  core::emitExhaustiveCounterC(perpetual, outcomes));
        writeFile(out_dir / (name + "_count_h.c"),
                  core::emitHeuristicCounterC(perpetual, outcomes));
        writeFile(out_dir / (name + "_params.txt"),
                  core::emitReadsParams(perpetual));
        writeFile(out_dir / (name + ".litmus"),
                  litmus::writeTest(test));

        std::printf("done: %zu outcomes of interest, stride(s):",
                    outcomes.size());
        for (litmus::LocationId loc = 0; loc < test.numLocations();
             ++loc)
            std::printf(" k_%s=%d", test.locations[static_cast<
                            std::size_t>(loc)].c_str(),
                        perpetual.strides[static_cast<std::size_t>(
                            loc)]);
        std::printf("\n");
        return 0;
    } catch (const Error &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
