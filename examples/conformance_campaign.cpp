/**
 * @file
 * A full memory-consistency conformance campaign: run the perpetual
 * litmus suite against a machine and flag every test whose forbidden
 * target outcome was observed — the end-to-end purpose of PerpLE.
 * Each detected violation is explained with a concrete witness frame
 * (which iterations interacted and which values prove the reordering).
 *
 * By default the campaign runs against a correct x86-TSO simulator and
 * reports a clean bill of health. Pass a bug name to inject a hardware
 * defect and watch the suite catch it:
 *
 *   conformance_campaign                # correct machine
 *   conformance_campaign non-fifo       # store buffers drain OoO
 *   conformance_campaign broken-fence   # MFENCE does not drain
 *   conformance_campaign no-forwarding  # loads skip the own buffer
 *
 * The specification to test against defaults to x86-TSO; pass `pso`
 * to test against SPARC-style Partial Store Order instead — a
 * non-FIFO machine is a *correct* PSO machine, and the campaign
 * verifies exactly that (the paper's weaker-models direction):
 *
 *   conformance_campaign non-fifo 20000 pso   # clean under PSO
 *
 * Usage: conformance_campaign [bug] [iterations] [tso|pso]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "perple/perple.h"

int
main(int argc, char **argv)
{
    using namespace perple;

    const std::string bug = argc > 1 ? argv[1] : "none";
    const std::int64_t iterations =
        argc > 2 ? std::atoll(argv[2]) : 20000;
    const std::string spec = argc > 3 ? argv[3] : "tso";
    if (spec != "tso" && spec != "pso") {
        std::fprintf(stderr, "unknown spec '%s' (tso, pso)\n",
                     spec.c_str());
        return 2;
    }
    const model::MemoryModel spec_model = spec == "pso"
        ? model::MemoryModel::PSO
        : model::MemoryModel::TSO;

    sim::MachineConfig machine;
    if (bug == "non-fifo") {
        machine.fifoStoreBuffers = false;
    } else if (bug == "broken-fence") {
        machine.fenceDrainsBuffer = false;
    } else if (bug == "no-forwarding") {
        machine.storeForwarding = false;
    } else if (bug != "none") {
        std::fprintf(stderr,
                     "unknown bug '%s' (none, non-fifo, broken-fence, "
                     "no-forwarding)\n",
                     bug.c_str());
        return 2;
    }

    std::printf("conformance campaign: %lld iterations per test, "
                "machine bug: %s, specification: %s\n\n",
                static_cast<long long>(iterations), bug.c_str(),
                spec.c_str());

    stats::Table table({"test", "verdict", "target hits", "status"});
    int violations = 0;
    int observed_allowed = 0;

    try {
        for (const auto &entry : litmus::perpetualSuite()) {
            const litmus::Test &test = entry.test;
            const core::PerpetualTest perpetual = core::convert(test);

            core::HarnessConfig config;
            config.seed = 7;
            config.runExhaustive = false; // Heuristic-only, as in VII.
            config.machine = machine;
            const auto result = core::runPerpetual(
                perpetual, iterations, {test.target}, config);
            const auto hits = (*result.heuristic)[0];

            const bool forbidden =
                model::classifyTarget(test, spec_model) ==
                litmus::TsoVerdict::Forbidden;
            std::string status;
            if (forbidden && hits > 0) {
                status = "VIOLATION";
                ++violations;
                // Extract and print a concrete witness frame.
                const auto outcomes = core::buildPerpetualOutcomes(
                    test, {test.target});
                const core::HeuristicCounter counter(test, outcomes);
                if (const auto frame = counter.findFirstFrame(
                        0, iterations, result.run.bufs)) {
                    std::printf("%s\n",
                                core::explainFrame(perpetual,
                                                   counter.outcomes()[0],
                                                   *frame, result.run)
                                    .c_str());
                }
            } else if (forbidden) {
                status = "clean";
            } else if (hits > 0) {
                status = "observed (expected)";
                ++observed_allowed;
            } else {
                status = "not observed";
            }
            table.addRow({test.name,
                          forbidden ? "forbidden" : "allowed",
                          stats::formatCount(hits), status});
            (void)entry;
        }
    } catch (const Error &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }

    std::printf("%s\n", table.toString().c_str());
    std::printf("allowed targets observed: %d\n", observed_allowed);
    if (violations > 0) {
        std::printf("RESULT: %d violation(s) detected — this machine "
                    "does not implement %s.\n",
                    violations, spec == "pso" ? "PSO" : "x86-TSO");
        return 1;
    }
    std::printf("RESULT: no violations — behaviour is consistent "
                "with %s.\n",
                spec == "pso" ? "PSO" : "x86-TSO");
    return 0;
}
