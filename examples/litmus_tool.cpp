/**
 * @file
 * A litmus7-style command-line front end over the whole library: run
 * any built-in or user-supplied litmus test with either engine, any
 * synchronization mode and either backend, and print the outcome
 * histogram.
 *
 * Usage:
 *   litmus_tool list
 *   litmus_tool show <test|file.litmus>
 *   litmus_tool run  <test|file.litmus> [options]
 *
 * Options for `run`:
 *   -n <iters>       iterations (default 10000)
 *   -e perple|litmus7  engine (default perple)
 *   -m <mode>        litmus7 sync mode: user userfence pthread
 *                    timebase none (default user)
 *   -b sim|native    backend (default sim)
 *   -s <seed>        RNG seed (default 1)
 *   --exhaustive     also run the exhaustive counter (perple engine)
 *   --kernel-mode auto|specialized|interpreter
 *                    counting engine (perple engine): the shape-
 *                    specialized batched kernels, the scalar
 *                    interpreter, or pick per outcome (default auto)
 *   --model sc|tso|pso|ra  classify the target against this model
 *                    (--spec is a legacy alias; default tso)
 *   --stream         epoch-pipelined run: COUNTH drains published
 *                    epochs while the test executes (perple engine;
 *                    default epoch 65536 iterations)
 *   --stream-epoch <n>  streaming epoch size (implies --stream)
 *   --stream-ring <n>   pipeline depth in epochs (default 4)
 *   --stream-spill <f>  file-back the buf store and drop analyzed
 *                    epochs from RAM (max N becomes disk-bound)
 *   --capture <f.plt>  record a .plt trace of the run (perple
 *                    engine; re-analyze with tools/perple_trace)
 *   --timeout <s>    run in a supervised child with this watchdog
 *                    (perple engine); timeouts/crashes are classified
 *                    and the completed prefix is salvaged
 *   --mem-limit <b>  supervised child memory cap (K/M/G suffix)
 *   --retries <n>    supervised attempts after a failure
 *   --no-supervise   never fork, even with limits set
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "perple/perple.h"

namespace
{

using namespace perple;

int
cmdList()
{
    stats::Table table({"test", "[T,T_L]", "TSO verdict",
                        "convertible"});
    for (const auto &entry : litmus::extendedCorpus()) {
        table.addRow(
            {entry.test.name,
             format("[%d,%d]", entry.test.numThreads(),
                    entry.test.numLoadThreads()),
             entry.expected == litmus::TsoVerdict::Allowed
                 ? "allowed"
                 : "forbidden",
             entry.convertible ? "yes" : "no"});
    }
    std::printf("%s", table.toString().c_str());
    return 0;
}

int
cmdShow(const std::string &spec)
{
    const litmus::Test test = litmus::loadTestSpec(spec);
    std::printf("%s\n", litmus::writeTest(test).c_str());
    std::string reason;
    if (core::isConvertible(test, {test.target}, reason)) {
        const auto perpetual = core::convert(test);
        const auto po =
            core::buildPerpetualOutcome(test, test.target);
        std::printf("perpetual target outcome: %s\n",
                    po.describe(test).c_str());
        const core::HeuristicCounter planner(
            test, {po});
        std::printf("heuristic plan: %s\n",
                    planner.describePlan(0).c_str());
    } else {
        std::printf("not convertible: %s\n", reason.c_str());
    }
    for (const auto model :
         {model::MemoryModel::SC, model::MemoryModel::TSO,
          model::MemoryModel::PSO, model::MemoryModel::RA}) {
        std::printf("target under %-3s: %s\n",
                    model::memoryModelName(model),
                    model::allows(test, test.target, model)
                        ? "allowed"
                        : "forbidden");
    }
    return 0;
}

/** --stream knobs forwarded into HarnessConfig. */
struct StreamOptions
{
    std::int64_t epochIters = 0; ///< 0 = batch mode.
    std::size_t ringDepth = 4;
    std::string spillPath;
};

int
cmdRun(const litmus::Test &test, std::int64_t iterations,
       const std::string &engine, runtime::SyncMode mode, bool native,
       std::uint64_t seed, bool exhaustive,
       core::KernelMode kernel_mode,
       model::MemoryModel spec_model, const std::string &capture,
       bool supervised, const supervise::SupervisorConfig &supervisor,
       const StreamOptions &stream_options)
{
    // Outcomes of interest: everything, target first.
    std::vector<litmus::Outcome> outcomes = {test.target};
    std::string reason;
    const bool convertible =
        core::isConvertible(test, {test.target}, reason);
    if (test.numLoadThreads() > 0) {
        for (const auto &o : litmus::enumerateRegisterOutcomes(test))
            if (!(o == test.target))
                outcomes.push_back(o);
    }
    const bool target_forbidden =
        !model::allows(test, test.target, spec_model);

    std::vector<std::uint64_t> counts;
    double seconds = 0;
    std::string engine_label;

    if (engine == "perple") {
        if (!convertible) {
            std::fprintf(stderr,
                         "test is not convertible (%s); rerun with "
                         "-e litmus7\n",
                         reason.c_str());
            return 1;
        }
        const auto perpetual = core::convert(test);
        core::HarnessConfig config;
        config.backend = native ? core::Backend::Native
                                : core::Backend::Simulator;
        config.seed = seed;
        config.runExhaustive = exhaustive;
        config.countMode = core::CountMode::Independent;
        config.kernelMode = kernel_mode;
        if (exhaustive && test.numLoadThreads() >= 3)
            config.exhaustiveCap = 400;
        config.capturePath = capture;
        config.streamEpochIters = stream_options.epochIters;
        config.streamRingDepth = stream_options.ringDepth;
        config.streamSpillPath = stream_options.spillPath;
        core::HarnessResult result;
        if (supervised) {
            const auto sup = supervise::runPerpetualSupervised(
                perpetual, iterations, outcomes, config, supervisor);
            if (!sup.ok())
                std::printf("supervised run: %s after %d attempt(s); "
                            "salvaged %lld of %lld iterations\n",
                            sup.child.describe().c_str(),
                            sup.child.attempts,
                            static_cast<long long>(
                                sup.completedIterations),
                            static_cast<long long>(iterations));
            if (!sup.analysis) {
                std::fprintf(stderr,
                             "no iterations completed; nothing to "
                             "count\n");
                return 1;
            }
            result = *sup.analysis;
            iterations = sup.completedIterations;
        } else {
            result = core::runPerpetual(perpetual, iterations,
                                        outcomes, config);
        }
        if (result.streamStats) {
            const auto &s = *result.streamStats;
            std::printf("streamed %lld epoch(s) of %lld iterations "
                        "(%lld seam pivot(s) deferred, peak backlog "
                        "%lld)%s\n",
                        static_cast<long long>(s.epochs),
                        static_cast<long long>(s.epochIters),
                        static_cast<long long>(s.deferredSeamPivots),
                        static_cast<long long>(s.peakDeferredBacklog),
                        s.spilled ? ", store spilled to disk" : "");
        }
        if (!capture.empty())
            std::printf("captured %.2f MiB trace to %s\n",
                        static_cast<double>(result.captureBytes) /
                            (1024.0 * 1024.0),
                        capture.c_str());
        counts = *result.heuristic;
        seconds = result.heuristicSeconds();
        engine_label = "perple-heuristic";
        if (exhaustive && result.exhaustive) {
            std::printf("exhaustive counts (first %lld iterations):",
                        static_cast<long long>(
                            result.exhaustiveIterations));
            for (const auto c : *result.exhaustive)
                std::printf(" %llu",
                            static_cast<unsigned long long>(c));
            std::printf("\n");
        }
        if (result.exhaustiveDowngraded)
            std::printf("note: %s\n", result.downgradeReason.c_str());
        if (result.kernelReport)
            std::printf("kernels: %s\n",
                        result.kernelReport->summary().c_str());
    } else {
        litmus7::Litmus7Config config;
        config.mode = mode;
        config.backend = native ? litmus7::Backend::Native
                                : litmus7::Backend::Simulator;
        config.seed = seed;
        const auto result =
            litmus7::runLitmus7(test, iterations, outcomes, config);
        counts = result.counts;
        seconds = result.totalSeconds();
        engine_label = "litmus7-" + runtime::syncModeName(mode);
    }

    std::printf("%s, %lld iterations, %.3f s\n", engine_label.c_str(),
                static_cast<long long>(iterations), seconds);
    stats::Table table({"outcome", "", "count"});
    for (std::size_t o = 0; o < outcomes.size(); ++o) {
        const bool is_target = outcomes[o] == test.target;
        table.addRow({outcomes[o].toString(test),
                      is_target ? (target_forbidden
                                       ? "<-target (forbidden)"
                                       : "<-target (allowed)")
                                : "",
                      stats::formatCount(counts[o])});
    }
    std::printf("%s", table.toString().c_str());

    if (target_forbidden && counts[0] > 0) {
        std::printf("\nWARNING: forbidden target observed %llu "
                    "times — specification violation!\n",
                    static_cast<unsigned long long>(counts[0]));
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace perple;

    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: litmus_tool list | show <test> | run "
                     "<test> [options]\n");
        return 2;
    }
    const std::string command = argv[1];

    try {
        if (command == "list")
            return cmdList();
        if (command == "show") {
            if (argc < 3) {
                std::fprintf(stderr, "show needs a test name\n");
                return 2;
            }
            return cmdShow(argv[2]);
        }
        if (command != "run" || argc < 3) {
            std::fprintf(stderr, "unknown command '%s'\n",
                         command.c_str());
            return 2;
        }

        const litmus::Test test = litmus::loadTestSpec(argv[2]);
        std::int64_t iterations = 10000;
        std::string engine = "perple";
        runtime::SyncMode mode = runtime::SyncMode::User;
        bool native = false;
        std::uint64_t seed = 1;
        bool exhaustive = false;
        core::KernelMode kernel_mode = core::KernelMode::Auto;
        model::MemoryModel spec_model = model::MemoryModel::TSO;
        std::string capture;
        supervise::SupervisorConfig supervisor;
        bool no_supervise = false;
        StreamOptions stream_options;

        for (int i = 3; i < argc; ++i) {
            const std::string arg = argv[i];
            const auto next = [&]() -> std::string {
                checkUser(i + 1 < argc,
                          "option " + arg + " needs a value");
                return argv[++i];
            };
            if (arg == "-n")
                iterations = common::parseIntArg(
                    "-n", next(), 1,
                    std::numeric_limits<std::int64_t>::max());
            else if (arg == "-e")
                engine = next();
            else if (arg == "-m")
                mode = runtime::syncModeFromName(next());
            else if (arg == "-b") {
                const std::string backend = next();
                checkUser(backend == "sim" || backend == "native",
                          "-b must be sim or native");
                native = backend == "native";
            } else if (arg == "-s")
                seed = common::parseSeedArg("-s", next());
            else if (arg == "--exhaustive")
                exhaustive = true;
            else if (arg == "--kernel-mode")
                kernel_mode = core::kernelModeFromName(next());
            else if (arg == "--model" || arg == "--spec")
                spec_model = model::memoryModelFromName(next());
            else if (arg == "--capture")
                capture = next();
            else if (arg == "--timeout")
                supervisor.timeoutSeconds =
                    common::parseSecondsArg("--timeout", next());
            else if (arg == "--mem-limit")
                supervisor.memLimitBytes =
                    common::parseBytesArg("--mem-limit", next());
            else if (arg == "--retries")
                supervisor.retries = static_cast<int>(
                    common::parseIntArg("--retries", next(), 0, 100));
            else if (arg == "--no-supervise")
                no_supervise = true;
            else if (arg == "--stream") {
                if (stream_options.epochIters == 0)
                    stream_options.epochIters = 65536;
            } else if (arg == "--stream-epoch")
                stream_options.epochIters = common::parseIntArg(
                    "--stream-epoch", next(), 1,
                    std::numeric_limits<std::int64_t>::max());
            else if (arg == "--stream-ring")
                stream_options.ringDepth = static_cast<std::size_t>(
                    common::parseIntArg("--stream-ring", next(), 1,
                                        4096));
            else if (arg == "--stream-spill")
                stream_options.spillPath = next();
            else
                fatal("unknown option '" + arg + "'");
        }
        checkUser(engine == "perple" || engine == "litmus7",
                  "engine must be perple or litmus7");
        checkUser(capture.empty() || engine == "perple",
                  "--capture requires the perple engine");
        const bool supervised =
            !no_supervise && (supervisor.timeoutSeconds > 0 ||
                              supervisor.memLimitBytes > 0 ||
                              supervisor.cpuLimitSeconds > 0 ||
                              supervisor.retries > 0);
        checkUser(!supervised || engine == "perple",
                  "--timeout/--mem-limit/--retries require the "
                  "perple engine");
        checkUser(stream_options.epochIters == 0 ||
                      engine == "perple",
                  "--stream requires the perple engine");
        return cmdRun(test, iterations, engine, mode, native, seed,
                      exhaustive, kernel_mode, spec_model, capture,
                      supervised, supervisor, stream_options);
    } catch (const Error &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
