/**
 * @file
 * Thread-skew study (paper Section VII-E / Figure 12): run a perpetual
 * litmus test and print the probability density of the skew between
 * reader and writer threads, decoded from the loaded sequence values.
 *
 * Usage: skew_study [test-name] [iterations] [seed]
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "perple/perple.h"

int
main(int argc, char **argv)
{
    using namespace perple;

    const std::string test_name = argc > 1 ? argv[1] : "sb";
    const std::int64_t iterations =
        argc > 2 ? std::atoll(argv[2]) : 100000;
    const std::uint64_t seed =
        argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 1;

    try {
        const auto &entry = litmus::findTest(test_name);
        const core::PerpetualTest perpetual =
            core::convert(entry.test);

        core::HarnessConfig config;
        config.seed = seed;
        config.runExhaustive = false;
        config.runHeuristic = false; // Execution only.
        const auto result = core::runPerpetual(
            perpetual, iterations, {entry.test.target}, config);

        const stats::Histogram skew =
            core::measureSkew(perpetual, result.run, iterations);
        if (skew.count() == 0) {
            std::printf("no cross-thread reads decoded; nothing to "
                        "plot\n");
            return 0;
        }

        std::printf("thread skew for '%s', %lld iterations "
                    "(%llu samples):\n",
                    test_name.c_str(),
                    static_cast<long long>(iterations),
                    static_cast<unsigned long long>(skew.count()));
        std::printf("  mean %.2f, stddev %.2f, range [%lld, %lld]\n\n",
                    skew.mean(), skew.stddev(),
                    static_cast<long long>(skew.min()),
                    static_cast<long long>(skew.max()));

        // ASCII probability-density plot (Figure 12's shape).
        const int bins = 41;
        const auto pdf = skew.binned(bins);
        double max_density = 0;
        for (const auto &[center, density] : pdf)
            max_density = std::max(max_density, density);
        for (const auto &[center, density] : pdf) {
            const int width = max_density > 0
                ? static_cast<int>(54.0 * density / max_density)
                : 0;
            std::printf("%9.1f | %s %.2e\n", center,
                        std::string(static_cast<std::size_t>(width),
                                    '#')
                            .c_str(),
                        density);
        }
        return 0;
    } catch (const Error &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
