# Empty compiler generated dependencies file for litmus_tool.
# This may be replaced when dependencies are built.
