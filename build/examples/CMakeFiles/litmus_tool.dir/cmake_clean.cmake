file(REMOVE_RECURSE
  "CMakeFiles/litmus_tool.dir/litmus_tool.cpp.o"
  "CMakeFiles/litmus_tool.dir/litmus_tool.cpp.o.d"
  "litmus_tool"
  "litmus_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/litmus_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
