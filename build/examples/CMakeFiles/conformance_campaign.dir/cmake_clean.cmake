file(REMOVE_RECURSE
  "CMakeFiles/conformance_campaign.dir/conformance_campaign.cpp.o"
  "CMakeFiles/conformance_campaign.dir/conformance_campaign.cpp.o.d"
  "conformance_campaign"
  "conformance_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conformance_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
