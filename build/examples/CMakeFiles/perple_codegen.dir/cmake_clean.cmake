file(REMOVE_RECURSE
  "CMakeFiles/perple_codegen.dir/perple_codegen.cpp.o"
  "CMakeFiles/perple_codegen.dir/perple_codegen.cpp.o.d"
  "perple_codegen"
  "perple_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perple_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
