# Empty compiler generated dependencies file for perple_codegen.
# This may be replaced when dependencies are built.
