# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/litmus_ir_test[1]_include.cmake")
include("/root/repo/build/tests/litmus_parser_test[1]_include.cmake")
include("/root/repo/build/tests/litmus_validator_test[1]_include.cmake")
include("/root/repo/build/tests/litmus_registry_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/sim_machine_test[1]_include.cmake")
include("/root/repo/build/tests/sim_conformance_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/litmus7_runner_test[1]_include.cmake")
include("/root/repo/build/tests/converter_test[1]_include.cmake")
include("/root/repo/build/tests/perpetual_outcome_test[1]_include.cmake")
include("/root/repo/build/tests/counters_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/generator_test[1]_include.cmake")
include("/root/repo/build/tests/witness_test[1]_include.cmake")
include("/root/repo/build/tests/rmw_test[1]_include.cmake")
include("/root/repo/build/tests/fast_counter_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_counters_test[1]_include.cmake")
