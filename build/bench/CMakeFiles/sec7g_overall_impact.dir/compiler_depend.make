# Empty compiler generated dependencies file for sec7g_overall_impact.
# This may be replaced when dependencies are built.
