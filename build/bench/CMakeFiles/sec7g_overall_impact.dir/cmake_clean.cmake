file(REMOVE_RECURSE
  "CMakeFiles/sec7g_overall_impact.dir/sec7g_overall_impact.cc.o"
  "CMakeFiles/sec7g_overall_impact.dir/sec7g_overall_impact.cc.o.d"
  "sec7g_overall_impact"
  "sec7g_overall_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec7g_overall_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
