file(REMOVE_RECURSE
  "CMakeFiles/fig11_detection_rate.dir/fig11_detection_rate.cc.o"
  "CMakeFiles/fig11_detection_rate.dir/fig11_detection_rate.cc.o.d"
  "fig11_detection_rate"
  "fig11_detection_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_detection_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
