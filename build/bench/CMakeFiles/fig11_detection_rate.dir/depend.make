# Empty dependencies file for fig11_detection_rate.
# This may be replaced when dependencies are built.
