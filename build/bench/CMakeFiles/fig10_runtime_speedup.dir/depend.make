# Empty dependencies file for fig10_runtime_speedup.
# This may be replaced when dependencies are built.
