# Empty dependencies file for heuristic_accuracy.
# This may be replaced when dependencies are built.
