file(REMOVE_RECURSE
  "CMakeFiles/heuristic_accuracy.dir/heuristic_accuracy.cc.o"
  "CMakeFiles/heuristic_accuracy.dir/heuristic_accuracy.cc.o.d"
  "heuristic_accuracy"
  "heuristic_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heuristic_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
