# Empty dependencies file for ablation_sync_overhead.
# This may be replaced when dependencies are built.
