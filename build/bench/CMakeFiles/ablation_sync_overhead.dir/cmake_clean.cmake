file(REMOVE_RECURSE
  "CMakeFiles/ablation_sync_overhead.dir/ablation_sync_overhead.cc.o"
  "CMakeFiles/ablation_sync_overhead.dir/ablation_sync_overhead.cc.o.d"
  "ablation_sync_overhead"
  "ablation_sync_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sync_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
