file(REMOVE_RECURSE
  "CMakeFiles/fig13_outcome_variety.dir/fig13_outcome_variety.cc.o"
  "CMakeFiles/fig13_outcome_variety.dir/fig13_outcome_variety.cc.o.d"
  "fig13_outcome_variety"
  "fig13_outcome_variety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_outcome_variety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
