# Empty dependencies file for fig13_outcome_variety.
# This may be replaced when dependencies are built.
