# Empty dependencies file for fig12_thread_skew.
# This may be replaced when dependencies are built.
