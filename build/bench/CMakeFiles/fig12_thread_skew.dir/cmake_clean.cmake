file(REMOVE_RECURSE
  "CMakeFiles/fig12_thread_skew.dir/fig12_thread_skew.cc.o"
  "CMakeFiles/fig12_thread_skew.dir/fig12_thread_skew.cc.o.d"
  "fig12_thread_skew"
  "fig12_thread_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_thread_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
