file(REMOVE_RECURSE
  "CMakeFiles/ablation_counter_scaling.dir/ablation_counter_scaling.cc.o"
  "CMakeFiles/ablation_counter_scaling.dir/ablation_counter_scaling.cc.o.d"
  "ablation_counter_scaling"
  "ablation_counter_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_counter_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
