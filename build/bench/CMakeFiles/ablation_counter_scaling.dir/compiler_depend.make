# Empty compiler generated dependencies file for ablation_counter_scaling.
# This may be replaced when dependencies are built.
