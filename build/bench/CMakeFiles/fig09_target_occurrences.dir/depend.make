# Empty dependencies file for fig09_target_occurrences.
# This may be replaced when dependencies are built.
