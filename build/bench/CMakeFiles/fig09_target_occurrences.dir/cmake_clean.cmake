file(REMOVE_RECURSE
  "CMakeFiles/fig09_target_occurrences.dir/fig09_target_occurrences.cc.o"
  "CMakeFiles/fig09_target_occurrences.dir/fig09_target_occurrences.cc.o.d"
  "fig09_target_occurrences"
  "fig09_target_occurrences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_target_occurrences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
