# Empty dependencies file for ablation_fast_counter.
# This may be replaced when dependencies are built.
