file(REMOVE_RECURSE
  "CMakeFiles/ablation_fast_counter.dir/ablation_fast_counter.cc.o"
  "CMakeFiles/ablation_fast_counter.dir/ablation_fast_counter.cc.o.d"
  "ablation_fast_counter"
  "ablation_fast_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fast_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
