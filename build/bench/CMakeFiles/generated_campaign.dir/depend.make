# Empty dependencies file for generated_campaign.
# This may be replaced when dependencies are built.
