file(REMOVE_RECURSE
  "CMakeFiles/generated_campaign.dir/generated_campaign.cc.o"
  "CMakeFiles/generated_campaign.dir/generated_campaign.cc.o.d"
  "generated_campaign"
  "generated_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generated_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
